package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"syscall"
	"time"

	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/shard"
	"ordo/internal/telemetry/span"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// errWorkerPanic is the internal sentinel a recovered worker panic turns
// into so the normal connection-teardown path runs.
var errWorkerPanic = errors.New("server: worker panicked")

// maxRecycledBuf bounds the frame buffers kept on the connection's free
// list: a rare giant frame gets its slab dropped to the GC instead of
// pinning MaxFrame-sized memory for the connection's lifetime.
const maxRecycledBuf = 64 << 10

// item is one queued unit of work. Exactly one of the flags is set for
// non-request items; otherwise payload holds a raw undecoded frame and op
// its peeked opcode byte. The reader does no decoding — the worker decodes
// into its arena so a pipelined run costs no per-request allocations — but
// the opcode is always payload byte 0, so the reader can peek it for run
// classification without parsing.
type item struct {
	payload []byte
	op      wire.Op
	// shed marks an op that arrived past the queue bound: the worker
	// answers BUSY in order without touching the engine.
	shed bool
	// protoErr marks a frame-level read failure: the worker answers ERR and
	// the connection closes after it (the stream offset is unrecoverable).
	protoErr bool
	// enq is the enqueue time for the queue-wait histogram; zero when
	// telemetry is off, so the plain path never calls time.Now.
	enq time.Time
}

// serverConn is one connection's state: a reader goroutine that frames and
// enqueues, and a worker goroutine that decodes, executes, responds in
// request order, and flushes when the pipeline goes idle. The engine
// session is touched only by the worker, matching db.Session's
// single-goroutine contract.
type serverConn struct {
	srv *Server
	nc  net.Conn
	// br is the reader goroutine's buffered stream; bw is the worker's
	// response batcher. Splitting the wire.Conn pair this way lets the
	// worker coalesce a pipelined window's responses into one Write while
	// the reader owns framing alone.
	br *bufio.Reader
	bw *wire.BatchWriter

	// sess is the worker's own engine session. Since the shard-lane
	// refactor it is reserved for the paths that cannot ride a single
	// lane: reads-only serving (follower mode, failed WAL device) and
	// cross-shard transactions, where the worker acts as coordinator
	// while the involved lanes are parked. Partitioned writes always go
	// through lanes, preserving the single-writer-per-partition
	// discipline.
	sess db.Session
	// wh is the worker's coordinator WAL append buffer in durable mode
	// (nil otherwise): cross-shard transactions log their whole write-set
	// as ONE record here, so recovery can never replay half a transfer.
	// Only the worker touches it; closed in workLoop teardown so the slot
	// recycles.
	wh *wal.Handle
	// ports is the connection's submission side to the shard lanes: one
	// bounded SPSC ring per lane, worker-owned.
	ports *shard.Ports
	// tel is the connection's histogram shard set (nil when telemetry is
	// off). Only the worker observes into it; closed in workLoop teardown
	// so the counts retire into the parent histograms.
	tel *connShards

	mu      sync.Mutex
	cond    *sync.Cond
	pending []item
	// freeBufs recycles frame payload buffers between the worker (which
	// returns them after a run) and the reader (which fills them), so a
	// steady-state pipeline reads every frame into memory it already owns.
	freeBufs [][]byte
	// readerDone means no further items will be enqueued (EOF, error, or
	// drain); the worker exits once pending empties.
	readerDone bool
	draining   bool
	// evicting marks a connection the server decided to get rid of (idle
	// client, write stall): the deadline errors that follow are expected
	// and must not count as protocol faults.
	evicting bool

	// Worker-owned scratch, reused across runs so the execBatch path is
	// allocation-free in steady state. arena backs decoded rows and TXN
	// sub-ops; its carvings live until the next run's Reset, which is after
	// every response of the current run has been encoded.
	arena     wire.Arena
	reqs      []wire.Request
	resps     []wire.Response
	runBuf    []item
	redoBuf   []byte
	writePtrs []*wire.Request

	// Lane-dispatch scratch, reused across runs: per-lane request/response
	// pointer groups (the scatter), the reusable batch per lane, the
	// submitted set of the current run (the gather), involved-lane marks
	// for cross-shard transactions, and publication-board snapshots for
	// the cross-shard read stability check.
	greqs    [][]*wire.Request
	gresps   [][]*wire.Response
	used     []int
	lbatch   []*shard.Batch
	subm     []*shard.Batch
	laneMark []bool
	tsV1     []uint64
	tsV2     []uint64
	// Span capture (DESIGN.md §16). spans is the node's ring, cached from
	// Telemetry at accept (nil disables capture entirely); sampler mints
	// this worker's head-sampling decisions. spanBuf is fixed scratch the
	// worker fills speculatively every run — clock reads and struct stores
	// only, so the sampling-off serve path stays zero-alloc — and publishes
	// to the ring only when the run turns out sampled or force-traced.
	// spanTrace is the run's trace ID (0 = unsampled), spanForce marks a
	// run that must trace regardless of the head decision (slow, ERR or
	// UNCERTAIN outcome, cross-shard, decode failure), runStartNS anchors
	// the decode span's duration.
	spans      *span.Ring
	sampler    span.Sampler
	spanBuf    [6]span.Span
	spanN      int
	spanTrace  span.TraceID
	spanForce  bool
	runStartNS uint64

	// protoFatal is set by the worker when a well-framed payload fails to
	// decode: the decoded prefix was served, the bad op answered ERR, and
	// nothing past it can be trusted, so the connection must close after a
	// flush.
	protoFatal bool
	// laneFatal is set when a lane panicked executing this connection's
	// batch: the lane survived (answered ERR, replaced its session), but the
	// submitting connection dies after the flush — the panic containment
	// boundary stays the connection, as in the flat design.
	laneFatal bool

	// Session-counter baselines for delta-flushing into server metrics.
	lastCommits, lastAborts uint64
	lastCmps, lastUncertain uint64
}

// hardCap is the absolute pending bound: past it the reader blocks rather
// than queueing even shed markers, so one connection's memory stays O(cap)
// no matter how fast it pumps frames.
func (c *serverConn) hardCap() int { return 2 * c.srv.cfg.QueueDepth }

func newServerConn(s *Server, nc net.Conn) *serverConn {
	c := &serverConn{
		srv:  s,
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 64<<10),
		bw:   wire.NewBatchWriter(nc),
		sess: s.cfg.DB.NewSession(),
	}
	if s.gc != nil {
		c.wh = s.gc.log.NewHandle()
	}
	if s.cfg.Telemetry != nil {
		c.tel = s.cfg.Telemetry.newConnShards()
		if ring := s.cfg.Telemetry.spans; ring != nil {
			c.spans = ring
			c.sampler = s.cfg.Telemetry.newSampler()
		}
	}
	n := s.lanes.N()
	c.ports = s.lanes.NewPorts()
	c.greqs = make([][]*wire.Request, n)
	c.gresps = make([][]*wire.Response, n)
	c.lbatch = make([]*shard.Batch, n)
	c.laneMark = make([]bool, n)
	c.cond = sync.NewCond(&c.mu)
	return c
}

// laneBatch returns the connection's reusable batch for one lane, reset
// for a new submission.
func (c *serverConn) laneBatch(lane int) *shard.Batch {
	b := c.lbatch[lane]
	if b == nil {
		b = shard.NewBatch()
		c.lbatch[lane] = b
	}
	b.Seq, b.WalWrites, b.Err, b.Panicked = 0, 0, nil, false
	b.Trace = uint64(c.spanTrace)
	return b
}

// beginDrain stops the reader (unblocking a pending read via deadline) and
// wakes the worker so it can finish the queue and close. Requests already
// accepted are still executed and their responses flushed. The deadline is
// set under c.mu so a reader about to arm its idle deadline cannot
// overwrite it (armReadDeadline checks draining under the same lock).
func (c *serverConn) beginDrain() {
	c.mu.Lock()
	c.draining = true
	c.nc.SetReadDeadline(time.Now())
	c.mu.Unlock()
	c.cond.Broadcast()
}

// armReadDeadline arms the reader's idle deadline for the next read. It is
// serialized with beginDrain/abortReader through c.mu: once draining is
// set, their immediate deadline stands.
func (c *serverConn) armReadDeadline() {
	d := c.srv.cfg.IdleTimeout
	c.mu.Lock()
	if !c.draining && d > 0 {
		c.nc.SetReadDeadline(time.Now().Add(d))
	}
	c.mu.Unlock()
}

// armWriteDeadline arms the worker's deadline before a response write or
// flush, so a client that stopped reading cannot park the worker (and its
// engine session) on a full send buffer forever.
func (c *serverConn) armWriteDeadline() {
	if d := c.srv.cfg.WriteTimeout; d > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(d))
	}
}

// evict marks the connection evicted (counted once) and records why.
func (c *serverConn) evict(reason string) {
	c.mu.Lock()
	first := !c.evicting
	c.evicting = true
	c.mu.Unlock()
	if first {
		c.srv.m.evictions.Add(1)
		c.srv.tracer().Record("eviction", c.nc.RemoteAddr().String()+": "+reason, 0)
		c.srv.logf("server: %v: evicting: %s", c.nc.RemoteAddr(), reason)
	}
}

// getBuf pops a recycled frame buffer, or nil when none is free (ReadFrame
// allocates one that will join the cycle once the worker returns it).
func (c *serverConn) getBuf() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.freeBufs); n > 0 {
		b := c.freeBufs[n-1]
		c.freeBufs[n-1] = nil
		c.freeBufs = c.freeBufs[:n-1]
		return b
	}
	return nil
}

// recycleRun returns a finished run's payload buffers to the free list and
// clears the items so nothing pins them.
func (c *serverConn) recycleRun(run []item) {
	c.mu.Lock()
	for i := range run {
		b := run[i].payload
		if b != nil && cap(b) <= maxRecycledBuf && len(c.freeBufs) < c.hardCap() {
			c.freeBufs = append(c.freeBufs, b[:0])
		}
		run[i] = item{}
	}
	c.mu.Unlock()
}

// readLoop reads raw frames and enqueues them until EOF, error, drain, or
// idle eviction. It never decodes payloads: framing is the reader's whole
// job, so a slow decode or execution cannot stall frame intake, and the
// worker's arena owns every decoded byte.
func (c *serverConn) readLoop() {
	defer func() {
		if r := recover(); r != nil {
			c.srv.m.panics.Add(1)
			c.srv.tracer().Record("panic", fmt.Sprintf("reader: %v", r), 0)
			c.srv.logf("server: %v: panic in reader: %v\n%s", c.nc.RemoteAddr(), r, debug.Stack())
			c.finishRead()
		}
	}()
	for {
		c.armReadDeadline()
		payload, err := wire.ReadFrame(c.br, c.getBuf())
		if err != nil {
			c.classifyReadError(err)
			c.finishRead()
			return
		}
		// PeekOp masks the trace flag: a traced op must classify into the
		// same run kind as its untraced form.
		c.enqueue(item{payload: payload, op: wire.PeekOp(payload)})
	}
}

// finishRead marks the reader done and wakes the worker so it can finish
// the queue and close.
func (c *serverConn) finishRead() {
	c.mu.Lock()
	c.readerDone = true
	c.mu.Unlock()
	c.cond.Broadcast()
}

// classifyReadError decides what ended the read loop. EOF, a closed
// socket, and a peer reset are a quiet hangup. A deadline error is quiet
// only when the server itself armed it — a drain or an eviction in
// progress — or when it is the idle deadline firing, which evicts the
// client. An oversize length prefix is a special protocol fault: the
// varint was consumed but the payload was not, so every byte that follows
// would be misparsed as frame headers — the connection is evicted as
// hostile and closes after the ERR. Any other failure (including a timeout
// nobody armed) is an ordinary protocol fault: logged, counted, and
// answered with ERR before the connection closes.
func (c *serverConn) classifyReadError(err error) {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.mu.Lock()
		expected := c.draining || c.evicting
		c.mu.Unlock()
		if expected {
			return // drain/eviction deadline, not a protocol fault
		}
		if d := c.srv.cfg.IdleTimeout; d > 0 {
			c.evict("idle for " + d.String())
			return
		}
	}
	if errors.Is(err, wire.ErrFrameTooBig) {
		c.evict("oversize frame")
	}
	c.srv.m.protoErrs.Add(1)
	c.srv.logf("server: %v: protocol error: %v", c.nc.RemoteAddr(), err)
	c.enqueue(item{protoErr: true})
}

// enqueue appends one item, shedding it if the queue is past QueueDepth and
// blocking if it is past the hard cap.
func (c *serverConn) enqueue(it item) {
	if c.tel != nil {
		it.enq = time.Now()
	}
	c.mu.Lock()
	for len(c.pending) >= c.hardCap() && !c.draining {
		c.cond.Wait()
	}
	if !it.protoErr && len(c.pending) >= c.srv.cfg.QueueDepth {
		it.shed = true
	}
	c.pending = append(c.pending, it)
	c.mu.Unlock()
	c.cond.Broadcast()
}

// workLoop pops runs of work, executes them, writes responses in order,
// and flushes whenever the queue goes idle. It owns the write side and the
// engine session exclusively.
func (c *serverConn) workLoop() {
	defer c.nc.Close()
	defer c.closeWAL()
	defer c.tel.close()
	defer c.ports.Close()
	for {
		c.mu.Lock()
		for len(c.pending) == 0 && !c.readerDone {
			c.cond.Wait()
		}
		if len(c.pending) == 0 && c.readerDone {
			c.mu.Unlock()
			// Reader is gone and nothing is queued: flush any buffered
			// responses and finish.
			c.armWriteDeadline()
			c.bw.Flush()
			c.flushSessionStats()
			return
		}
		run, last := c.popRun()
		c.mu.Unlock()
		c.cond.Broadcast() // queue space freed

		// Queue wait ends here: the run is in the worker's hands. The same
		// timestamp starts the service-latency clock.
		var start time.Time
		if c.tel != nil {
			start = time.Now()
			var maxWait time.Duration
			for i := range run {
				w := start.Sub(run[i].enq)
				c.tel.wait.ObserveDuration(w)
				if w > maxWait {
					maxWait = w
				}
			}
			c.beginRunSpans(maxWait)
		}
		c.armWriteDeadline()
		err := c.runOne(run)
		if c.tel != nil {
			d := time.Since(start)
			c.finishRunSpans(d)
			c.observeRun(run, d)
		}
		protoErrTail := run[len(run)-1].protoErr
		c.recycleRun(run)
		if err != nil {
			c.noteWriteError(err)
			c.abortReader()
			c.flushSessionStats()
			return
		}
		c.flushSessionStats()
		if c.protoFatal || c.laneFatal {
			// A worker-detected decode error or a lane panic on this
			// connection's batch: the reader may still be pumping frames, so
			// the flush cannot ride the idle-queue path — push the responses
			// (prefix + ERR) out explicitly, then die.
			c.armWriteDeadline()
			c.bw.Flush()
			c.abortReader()
			return
		}
		if last {
			// The queue looked empty after the pop: flush so the client
			// sees its responses now rather than at the next batch.
			c.armWriteDeadline()
			if err := c.bw.Flush(); err != nil {
				c.noteWriteError(err)
				c.abortReader()
				return
			}
		}
		if protoErrTail {
			// The stream is unrecoverable past a protocol error.
			c.abortReader()
			return
		}
	}
}

// runOne executes one run with panic containment: a request that panics the
// engine (or the server's own execution path) is answered with ERR for the
// whole run, counted, and tears down only this connection — the process and
// the other connections keep serving.
func (c *serverConn) runOne(run []item) (err error) {
	defer func() {
		if r := recover(); r != nil {
			c.srv.m.panics.Add(1)
			c.srv.tracer().Record("panic", fmt.Sprintf("worker: %v", r), 0)
			c.srv.logf("server: %v: panic in worker: %v\n%s", c.nc.RemoteAddr(), r, debug.Stack())
			// Best effort: the run produced no responses yet (responses are
			// written only after the engine returns), so answer ERR for each
			// of its ops to keep the stream ordered, then kill the conn.
			for range run {
				if werr := c.bw.WriteResponse(&wire.Response{Kind: wire.RespEmpty, Status: wire.StatusErr}); werr != nil {
					break
				}
			}
			c.bw.Flush()
			err = errWorkerPanic
		}
	}()
	return c.process(run)
}

// noteWriteError classifies a response-path failure: a deadline expiry
// means a client that stopped reading — evict it; anything else is an
// ordinary broken connection.
func (c *serverConn) noteWriteError(err error) {
	if errors.Is(err, errWorkerPanic) {
		return // already logged with its stack
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.evict("write stalled past " + c.srv.cfg.WriteTimeout.String())
		return
	}
	c.srv.logf("server: %v: write: %v", c.nc.RemoteAddr(), err)
}

// popRun pops the next execution unit under c.mu: either one special item
// (shed, protocol error, TXN, STATS) or a maximal contiguous run of simple
// ops up to MaxBatch, classified by the peeked opcode byte. It reports
// whether the queue drained.
func (c *serverConn) popRun() ([]item, bool) {
	special := func(it *item) bool {
		return it.shed || it.protoErr || !it.op.Simple()
	}
	n := 1
	if !special(&c.pending[0]) {
		for n < len(c.pending) && n < c.srv.cfg.MaxBatch && !special(&c.pending[n]) {
			n++
		}
	}
	if cap(c.runBuf) < n {
		c.runBuf = make([]item, n)
	}
	run := c.runBuf[:n]
	copy(run, c.pending[:n])
	rest := copy(c.pending, c.pending[n:])
	for i := rest; i < len(c.pending); i++ {
		c.pending[i] = item{} // release request payloads
	}
	c.pending = c.pending[:rest]
	return run, rest == 0
}

// abortReader makes a stuck reader exit so the connection can die: mark
// done, unblock the hard-cap wait, and poison the socket's read side.
func (c *serverConn) abortReader() {
	c.mu.Lock()
	c.draining = true
	c.nc.SetReadDeadline(time.Now())
	c.mu.Unlock()
	c.cond.Broadcast()
}

// flushSessionStats adds the session's counter deltas to server metrics.
// Only the worker calls it, so the plain session counters stay race-free.
func (c *serverConn) flushSessionStats() {
	commits, aborts := c.sess.Stats()
	c.srv.m.commits.Add(commits - c.lastCommits)
	c.srv.m.aborts.Add(aborts - c.lastAborts)
	c.lastCommits, c.lastAborts = commits, aborts
	if ch, ok := c.sess.(db.ClockHealth); ok {
		cmps, unc := ch.ClockStats()
		c.srv.m.clockCmps.Add(cmps - c.lastCmps)
		c.srv.m.clockUncertain.Add(unc - c.lastUncertain)
		c.lastCmps, c.lastUncertain = cmps, unc
	}
}

// beginRunSpans starts one run's speculative span capture: reset the
// scratch and record the queue span (wait already measured by the caller).
// Everything here is clock reads and stores into fixed scratch — the
// sampling decision has not been made yet, and when the run stays
// unsampled the scratch is simply abandoned, so this costs no allocation.
func (c *serverConn) beginRunSpans(wait time.Duration) {
	if c.spans == nil {
		return
	}
	c.spanTrace, c.spanForce = 0, false
	now, unc := c.spans.Now()
	c.runStartNS = now
	c.spanBuf[0] = span.Span{Stage: span.StageQueue, TS: now, Unc: unc, Dur: uint64(wait), Lane: -1}
	c.spanN = 1
}

// noteDecodeSpans records the decode span and makes the run's head-based
// sampling decision: a client-stamped trace ID wins (and forces the
// trace); otherwise the worker's sampler decides. Called by process once
// the run is decoded — before execution, so lane batches can carry the ID.
func (c *serverConn) noteDecodeSpans(reqs []wire.Request) {
	if c.spans == nil || c.spanN == 0 {
		return
	}
	now, unc := c.spans.Now()
	var dur uint64
	if now > c.runStartNS {
		dur = now - c.runStartNS
	}
	c.spanBuf[c.spanN] = span.Span{Stage: span.StageDecode, TS: now, Unc: unc, Dur: dur, Lane: -1}
	c.spanN++
	for i := range reqs {
		if reqs[i].Trace != 0 {
			c.spanTrace = span.TraceID(reqs[i].Trace)
			c.spanForce = true
			return
		}
	}
	if id, ok := c.sampler.Sample(); ok {
		c.spanTrace = id
	}
}

// noteSpan appends one stage point to the run's span scratch.
func (c *serverConn) noteSpan(stage span.Stage, dur time.Duration) {
	if c.spans == nil || c.spanN == 0 || c.spanN >= len(c.spanBuf) {
		return
	}
	now, unc := c.spans.Now()
	c.spanBuf[c.spanN] = span.Span{Stage: stage, TS: now, Unc: unc, Dur: uint64(dur), Lane: -1}
	c.spanN++
}

// forceTrace ensures the current run has a trace ID and will publish its
// spans — the forced-sampling path for cross-shard transactions. Stages
// that already ran without an ID (a lane batch submitted before the force)
// are simply absent from the trace.
func (c *serverConn) forceTrace() {
	if c.spans == nil {
		return
	}
	c.spanForce = true
	if c.spanTrace == 0 {
		c.spanTrace = c.sampler.ForceID()
	}
}

// finishRunSpans decides the run's fate: a slow run forces tracing; a run
// with a trace ID (head-sampled or forced) stamps the ID across the
// scratch and publishes it to the ring in one batch. An unsampled run
// abandons the scratch — the zero-alloc path.
func (c *serverConn) finishRunSpans(d time.Duration) {
	if c.spans == nil || c.spanN == 0 {
		return
	}
	n := c.spanN
	c.spanN = 0
	if d >= c.srv.cfg.Telemetry.slowOp {
		c.spanForce = true
	}
	if c.spanTrace == 0 {
		if !c.spanForce {
			return
		}
		c.spanTrace = c.sampler.ForceID()
	}
	for i := 0; i < n; i++ {
		c.spanBuf[i].Trace = c.spanTrace
	}
	c.spans.RecordAll(c.spanBuf[:n])
}

// process decodes one run into the worker's arena and executes it, writing
// responses in order. A payload that fails to decode ends the connection:
// the decoded prefix is served normally, the bad op answers ERR, and
// protoFatal tells workLoop to flush and tear down — the frames already
// queued past it are dropped, because a client that framed garbage cannot
// be trusted to have meant them.
func (c *serverConn) process(run []item) error {
	if len(run) == 1 {
		it := &run[0]
		switch {
		case it.shed:
			c.srv.m.busy.Add(1)
			return c.bw.WriteResponse(&wire.Response{Kind: wire.RespEmpty, Status: wire.StatusBusy})
		case it.protoErr:
			return c.bw.WriteResponse(&wire.Response{Kind: wire.RespEmpty, Status: wire.StatusErr})
		}
	}
	c.arena.Reset()
	reqs := c.reqs[:0]
	var derr error
	for i := range run {
		req, err := wire.DecodeRequestArena(run[i].payload, &c.arena)
		if err != nil {
			derr = err
			break
		}
		reqs = append(reqs, req)
	}
	c.reqs = reqs
	c.noteDecodeSpans(reqs)
	if len(reqs) == 1 && reqs[0].Op == wire.OpTxn {
		resp := c.execTxn(&reqs[0])
		if err := c.bw.WriteResponse(&resp); err != nil {
			return err
		}
	} else if len(reqs) == 1 && reqs[0].Op == wire.OpStats {
		resp := c.execStats()
		if err := c.bw.WriteResponse(&resp); err != nil {
			return err
		}
	} else if len(reqs) > 0 {
		resps := c.execBatch(reqs)
		for i := range resps {
			if err := c.bw.WriteResponse(&resps[i]); err != nil {
				return err
			}
		}
	}
	if derr != nil {
		c.srv.m.protoErrs.Add(1)
		c.srv.logf("server: %v: protocol error: %v", c.nc.RemoteAddr(), derr)
		c.protoFatal = true
		c.spanForce = true
		return c.bw.WriteResponse(&wire.Response{Kind: wire.RespEmpty, Status: wire.StatusErr})
	}
	return nil
}

// scratchResps returns a zeroed response slice of length n backed by the
// worker's reusable buffer; valid until the next call.
func (c *serverConn) scratchResps(n int) []wire.Response {
	if cap(c.resps) < n {
		c.resps = make([]wire.Response, n)
	}
	resps := c.resps[:n]
	for i := range resps {
		resps[i] = wire.Response{}
	}
	return resps
}

// countOp tallies one executed simple op into server metrics.
func (c *serverConn) countOp(op wire.Op) {
	switch op {
	case wire.OpGet, wire.OpGetAt:
		c.srv.m.gets.Add(1)
	case wire.OpPut:
		c.srv.m.puts.Add(1)
	case wire.OpInsert:
		c.srv.m.inserts.Add(1)
	case wire.OpDelete:
		c.srv.m.deletes.Add(1)
	}
}

// countOps tallies a finished run's ops, skipping ops whose final status is
// ERR (schema-validation failures, unattributable engine errors): only ops
// the engine actually answered count as served.
func (c *serverConn) countOps(reqs []wire.Request, resps []wire.Response) {
	for i := range reqs {
		st := resps[i].Status
		if st != wire.StatusErr {
			c.countOp(reqs[i].Op)
		}
		// Failed or ambiguous outcomes force the run's trace: they are the
		// requests an operator most wants a timeline for.
		if c.spans != nil && (st == wire.StatusErr || st == wire.StatusUncertain) {
			c.spanForce = true
		}
	}
}

// execBatch serves a contiguous run of simple ops through the shard
// lanes: the run is scattered by key hash into per-lane batches, each lane
// executes its slice as one engine transaction on its own single-writer
// session (the batching that amortizes timestamp allocation, now also
// across connections), and the worker gathers completions before writing
// responses in request order. Commit/degrade semantics live in the lane
// runner (lane.go) and are unchanged from the flat design.
//
// In durable mode each lane appends its slice's acked write-set as one
// redo record without blocking; the worker here performs the run's single
// durability wait on the highest appended sequence, so one fsync still
// covers the whole pipelined window and a stalled device parks this
// connection, never a lane. A failed wait flips exactly the provisionally
// acked writes to ERR, so the client never sees an acknowledgment the log
// cannot honor.
//
// The returned responses are backed by worker scratch and valid until the
// next run.
func (c *serverConn) execBatch(reqs []wire.Request) []wire.Response {
	if c.srv.ReadOnly() && runHasWrites(reqs) {
		// Follower mode: the replication apply loop is the engine's only
		// writer; client writes never touch the engine. Not counted as
		// degraded — this is the configured serving mode, not a failure.
		return c.execReadsOnly(reqs, false)
	}
	if gc := c.srv.gc; gc != nil && gc.failed() != nil && runHasWrites(reqs) {
		return c.execReadsOnly(reqs, true)
	}
	resps := c.scratchResps(len(reqs))
	c.scatter(reqs, resps)
	c.submitGroups(shard.Ops)
	maxSeq := c.gather()
	c.waitDurable(reqs, resps, maxSeq)
	c.countOps(reqs, resps)
	return resps
}

// scatter partitions a run into per-lane request/response pointer groups,
// resetting the previous run's groups first. Group slices are conn scratch
// so the steady-state path allocates nothing.
func (c *serverConn) scatter(reqs []wire.Request, resps []wire.Response) {
	for _, ln := range c.used {
		c.greqs[ln] = c.greqs[ln][:0]
		c.gresps[ln] = c.gresps[ln][:0]
	}
	c.used = c.used[:0]
	lanes := c.srv.lanes
	for i := range reqs {
		ln := lanes.Route(reqs[i].Key)
		if len(c.greqs[ln]) == 0 {
			c.used = append(c.used, ln)
		}
		c.greqs[ln] = append(c.greqs[ln], &reqs[i])
		c.gresps[ln] = append(c.gresps[ln], &resps[i])
	}
}

// submitGroups submits every non-empty scatter group as one batch of the
// given kind, collecting the submitted set for gather. A submit that fails
// (lanes closed — cannot happen while connections drain before lanes, but
// guarded anyway) answers ERR in place.
func (c *serverConn) submitGroups(kind shard.Kind) {
	c.subm = c.subm[:0]
	for _, ln := range c.used {
		b := c.laneBatch(ln)
		b.Kind = kind
		b.Reqs, b.Resps = c.greqs[ln], c.gresps[ln]
		if err := c.ports.Submit(ln, b); err != nil {
			for _, rp := range c.gresps[ln] {
				*rp = wire.Response{Kind: wire.RespEmpty, Status: wire.StatusErr}
			}
			continue
		}
		c.subm = append(c.subm, b)
	}
}

// gather waits out every submitted batch and returns the highest WAL
// durability sequence any lane appended (0 when nothing was logged).
func (c *serverConn) gather() uint64 {
	var maxSeq uint64
	for _, b := range c.subm {
		b.Wait()
		if b.Seq > maxSeq {
			maxSeq = b.Seq
		}
		if b.Panicked {
			c.laneFatal = true
		}
	}
	return maxSeq
}

// waitDurable performs the run's single group-commit wait. On failure it
// erases exactly the provisional ack tokens the lanes stamped, flipping
// those writes to the failure's status: ERR for device failures (the log
// could not honor them — DESIGN.md §10, wal_unacked_writes), UNCERTAIN
// for a replication-ack timeout (durable locally, replication pending).
func (c *serverConn) waitDurable(reqs []wire.Request, resps []wire.Response, maxSeq uint64) {
	if maxSeq == 0 || c.srv.gc == nil {
		return
	}
	var ackStart time.Time
	if c.tel != nil {
		ackStart = time.Now()
	}
	werr := c.srv.gc.wait(maxSeq)
	if c.tel != nil {
		d := time.Since(ackStart)
		c.tel.ack.ObserveDuration(d)
		c.noteSpan(span.StageAck, d)
	}
	if werr == nil {
		return
	}
	c.spanForce = true
	status := wire.StatusOf(werr)
	var flipped uint64
	for i := range reqs {
		if isWrite(reqs[i].Op) && resps[i].Status == wire.StatusOK && resps[i].TS != 0 {
			resps[i] = wire.Response{Kind: wire.RespEmpty, Status: status}
			flipped++
		}
	}
	c.srv.m.walUnackedWrites.Add(flipped)
}

// isWrite reports whether a simple op mutates engine state.
func isWrite(op wire.Op) bool {
	return op == wire.OpPut || op == wire.OpInsert || op == wire.OpDelete
}

// isRead reports whether an op only reads engine state.
func isRead(op wire.Op) bool {
	return op == wire.OpGet || op == wire.OpGetAt
}

// runHasWrites reports whether any op in the run mutates engine state.
func runHasWrites(reqs []wire.Request) bool {
	for i := range reqs {
		if isWrite(reqs[i].Op) {
			return true
		}
	}
	return false
}

// execReadsOnly serves a run on a server that cannot take writes — a
// follower (configured read-only serving) or a leader whose WAL device
// failed (countDegraded). Reads still serve from the intact in-memory
// engine; writes are refused without touching the engine. A follower
// refuses with NOT_LEADER carrying the believed leader's address so a
// resilient client can chase the redirect; a degraded leader answers ERR
// as before.
func (c *serverConn) execReadsOnly(reqs []wire.Request, countDegraded bool) []wire.Response {
	if countDegraded {
		c.srv.m.degraded.Add(1)
	}
	refusal := wire.Response{Kind: wire.RespEmpty, Status: wire.StatusErr}
	if !countDegraded {
		if st := c.srv.cfg.Repl; st != nil && st.Role() == RoleFollower {
			refusal = wire.Response{Kind: wire.RespEmpty, Status: wire.StatusNotLeader, Redirect: st.LeaderAddr()}
		}
	}
	resps := c.scratchResps(len(reqs))
	for i := range reqs {
		req := &reqs[i]
		if !isRead(req.Op) {
			resps[i] = refusal
			continue
		}
		err := db.RunWithRetry(c.sess, c.srv.cfg.MaxRetries, func(tx db.Tx) error {
			r, err := c.srv.execOp(tx, req)
			if err != nil {
				return err
			}
			resps[i] = r
			return nil
		})
		if err != nil {
			resps[i] = wire.Response{Kind: wire.RespEmpty, Status: wire.StatusOf(err)}
		}
	}
	c.countOps(reqs, resps)
	return resps
}

// closeWAL releases the connection's WAL handle so its slot recycles;
// anything still buffered drains into the log's next flush.
func (c *serverConn) closeWAL() {
	if c.wh != nil {
		c.wh.Close()
	}
}

// commitTS returns the engine commit timestamp of the worker's last
// successful transaction. New() guarantees the session implements
// db.CommitTS whenever durable mode is on.
func (c *serverConn) commitTS() uint64 {
	return c.sess.(db.CommitTS).LastCommitTS()
}

// walCommitWrites logs a committed transaction's write-set as one redo
// record and blocks until it is durable, returning the logged timestamp —
// the durability token stamped on the write acks. The encode buffer is the
// worker's reusable scratch: wal.Handle.AppendAt copies the record, so the
// buffer is free again the moment append returns.
func (c *serverConn) walCommitWrites(writes []*wire.Request) (uint64, error) {
	redo, err := AppendRedo(c.redoBuf[:0], writes)
	if err != nil {
		return 0, err
	}
	c.redoBuf = redo
	if c.tel == nil {
		return c.srv.gc.commit(c.wh, c.commitTS(), redo)
	}
	start := time.Now()
	ts, err := c.srv.gc.commitTrace(c.wh, c.commitTS(), redo, uint64(c.spanTrace))
	d := time.Since(start)
	c.tel.ack.ObserveDuration(d)
	c.noteSpan(span.StageAck, d)
	return ts, err
}

// execTxn runs one TXN frame atomically. A TXN whose keys all hash to one
// lane rides that lane like any batch; a TXN spanning lanes takes the
// cross-shard path — the Ordo-merged read for read-only TXNs, the parked-
// lane barrier for writes. On commit the response carries per-op results;
// on failure the batch status stands alone (the client retries or surfaces
// it — partial results would be unordered fiction). In durable mode the
// whole TXN acks only after its write-set is durable; a WAL failure turns
// the committed-but-unloggable TXN into one ERR.
func (c *serverConn) execTxn(req *wire.Request) wire.Response {
	c.srv.m.txns.Add(1)
	c.srv.m.txnOps.Add(uint64(len(req.Ops)))
	if c.srv.ReadOnly() && txnHasWrites(req) {
		if st := c.srv.cfg.Repl; st != nil && st.Role() == RoleFollower {
			// RespBatch cannot carry a redirect address; the NOT_LEADER
			// status alone tells the client to re-resolve the leader.
			return wire.Response{Kind: wire.RespBatch, Status: wire.StatusNotLeader}
		}
		return wire.Response{Kind: wire.RespBatch, Status: wire.StatusErr}
	}
	if gc := c.srv.gc; gc != nil && gc.failed() != nil && txnHasWrites(req) {
		c.srv.m.degraded.Add(1)
		return wire.Response{Kind: wire.RespBatch, Status: wire.StatusErr}
	}
	if single := c.txnLanes(req); single >= 0 {
		return c.execTxnSingleLane(req, single)
	}
	if txnHasWrites(req) {
		return c.execTxnCrossWrite(req)
	}
	return c.execTxnCrossRead(req)
}

// txnLanes marks the lanes a TXN's keys route to in c.laneMark and returns
// the lane index if exactly one is involved, -1 otherwise. An empty TXN
// routes to lane 0.
func (c *serverConn) txnLanes(req *wire.Request) int {
	for i := range c.laneMark {
		c.laneMark[i] = false
	}
	lanes := c.srv.lanes
	if len(req.Ops) == 0 {
		c.laneMark[0] = true
		return 0
	}
	n, last := 0, -1
	for i := range req.Ops {
		ln := lanes.Route(req.Ops[i].Key)
		if !c.laneMark[ln] {
			c.laneMark[ln] = true
			n++
			last = ln
		}
	}
	if n == 1 {
		return last
	}
	return -1
}

// execTxnSingleLane runs a lane-confined TXN on its owning lane. The lane
// appends the redo record without blocking; the worker waits here, and a
// failed wait downgrades the whole TXN to one ERR — all-or-nothing ack.
func (c *serverConn) execTxnSingleLane(req *wire.Request, lane int) wire.Response {
	var resp wire.Response
	b := c.laneBatch(lane)
	b.Kind = shard.Txn
	treq := [1]*wire.Request{req}
	tresp := [1]*wire.Response{&resp}
	b.Reqs, b.Resps = treq[:], tresp[:]
	if err := c.ports.Submit(lane, b); err != nil {
		return wire.Response{Kind: wire.RespBatch, Status: wire.StatusErr}
	}
	b.Wait()
	if b.Panicked {
		c.laneFatal = true
	}
	if b.Seq != 0 {
		var ackStart time.Time
		if c.tel != nil {
			ackStart = time.Now()
		}
		werr := c.srv.gc.wait(b.Seq)
		if c.tel != nil {
			d := time.Since(ackStart)
			c.tel.ack.ObserveDuration(d)
			c.noteSpan(span.StageAck, d)
		}
		if werr != nil {
			c.spanForce = true
			c.srv.m.walUnackedWrites.Add(uint64(b.WalWrites))
			// ERR for device failure, UNCERTAIN for an ack timeout.
			return wire.Response{Kind: wire.RespBatch, Status: wire.StatusOf(werr)}
		}
	}
	return resp
}

// parkInvolved submits a Hold barrier to every lane marked in c.laneMark
// and waits until each is parked, returning the release function. While
// parked a lane can commit nothing, so the coordinator's transaction on
// the worker session sees and produces a state no lane write can tear.
func (c *serverConn) parkInvolved() func() {
	held := make([]*shard.Batch, 0, len(c.laneMark))
	for ln, in := range c.laneMark {
		if !in {
			continue
		}
		h := shard.NewHold()
		if c.ports.Submit(ln, h) != nil {
			continue
		}
		held = append(held, h)
	}
	for _, h := range held {
		<-h.Parked
	}
	return func() {
		for _, h := range held {
			close(h.Release)
			h.Wait()
		}
	}
}

// execTxnCrossWrite coordinates a multi-lane writing TXN: park every
// involved lane, execute atomically on the worker's own session (the
// engine's concurrency control still backs it), log the whole write-set as
// ONE redo record on the coordinator handle — split per-lane records could
// replay a torn transfer after a crash — and publish the commit timestamp
// onto every involved lane's board BEFORE releasing them, so a subsequent
// cross-shard read's stability check cannot miss this commit.
// Coordinators serialize on crossMu: overlapping lane subsets parked in
// arbitrary order would deadlock otherwise.
func (c *serverConn) execTxnCrossWrite(req *wire.Request) wire.Response {
	srv := c.srv
	srv.m.crossTxns.Add(1)
	// Cross-shard transactions are always traced: they are the requests
	// whose ordering story spans the most machinery.
	c.forceTrace()
	srv.crossMu.Lock()
	defer srv.crossMu.Unlock()
	release := c.parkInvolved()
	defer release()

	resps := make([]wire.Response, len(req.Ops))
	err := db.RunWithRetry(c.sess, srv.cfg.MaxRetries, func(tx db.Tx) error {
		for i := range req.Ops {
			r, err := srv.execOp(tx, &req.Ops[i])
			if err != nil {
				return err
			}
			resps[i] = r
		}
		return nil
	})
	if err != nil {
		return wire.Response{Kind: wire.RespBatch, Status: wire.StatusOf(err)}
	}
	if c.wh != nil {
		writes := c.writePtrs[:0]
		for i := range req.Ops {
			if isWrite(req.Ops[i].Op) && resps[i].Status == wire.StatusOK {
				writes = append(writes, &req.Ops[i])
			}
		}
		c.writePtrs = writes
		if len(writes) > 0 {
			ts, werr := c.walCommitWrites(writes)
			if werr != nil {
				srv.m.walUnackedWrites.Add(uint64(len(writes)))
				// ERR for device failure, UNCERTAIN for an ack timeout.
				return wire.Response{Kind: wire.RespBatch, Status: wire.StatusOf(werr)}
			}
			// The ack token rides the per-op sub-responses: RespBatch itself
			// carries no TS on the wire.
			for i := range req.Ops {
				if isWrite(req.Ops[i].Op) && resps[i].Status == wire.StatusOK {
					resps[i].TS = ts
				}
			}
		}
	}
	if cs, ok := c.sess.(db.CommitTS); ok {
		cts := cs.LastCommitTS()
		for ln, in := range c.laneMark {
			if in {
				srv.lanes.Lane(ln).Publish(cts)
			}
		}
		// Commit span at the commit timestamp itself when the node can
		// convert engine ticks to the span clock's scale; the coordinator
		// path has no lane span — the involved lanes were parked, not
		// executing.
		if c.spans != nil && c.spanN > 0 && c.spanN < len(c.spanBuf) {
			now, unc := c.spans.Now()
			ts := c.spans.ConvTicks(cts)
			if ts == 0 {
				ts = now
			}
			c.spanBuf[c.spanN] = span.Span{Stage: span.StageCommit, TS: ts, Unc: unc, Lane: -1}
			c.spanN++
		}
	}
	return wire.Response{Kind: wire.RespBatch, Status: wire.StatusOK, Batch: resps}
}

// crossReadAttempts bounds the optimistic passes of a cross-shard read
// before it falls back to the pessimistic barrier. Logical-clock servers
// have no uncertainty window and never answer NOT_YET, so without the
// bound a hot lane could starve the read forever.
const crossReadAttempts = 3

// execTxnCrossRead serves a multi-lane read-only TXN the Ordo way: execute
// per-lane, then decide with timestamp comparison whether the per-lane
// answers form one consistent cut. Each pass snapshots the involved lanes'
// publication boards (V1), scatters the reads, and snapshots again (V2).
// Lanes publish before acking, so if V1 == V2 no write that any client
// could have observed landed between the reads — the merge is a consistent
// cut. If a board moved, cmp_time against the read's start classifies the
// interfering commit: inside the uncertainty window the server answers
// NOT_YET (the paper's honest refusal — order is not yet decidable, the
// client retries with the board timestamp in hand); definitely ordered
// commits just mean we raced a writer, so retry optimistically, and after
// crossReadAttempts fall back to parking the involved lanes.
func (c *serverConn) execTxnCrossRead(req *wire.Request) wire.Response {
	srv := c.srv
	srv.m.crossReads.Add(1)
	// Forced before the first scatter so the lane batches carry the ID.
	c.forceTrace()
	var startTS uint64
	if ord := srv.cfg.Ordo; ord != nil {
		startTS = uint64(ord.GetTime())
	}
	resps := make([]wire.Response, len(req.Ops))
	for attempt := 0; attempt < crossReadAttempts; attempt++ {
		c.tsV1 = srv.lanes.Published(c.tsV1)
		c.scatter(req.Ops, resps)
		c.submitGroups(shard.TxnRead)
		var berr error
		for _, b := range c.subm {
			b.Wait()
			if b.Err != nil {
				berr = b.Err
			}
			if b.Panicked {
				c.laneFatal = true
			}
		}
		if c.laneFatal {
			return wire.Response{Kind: wire.RespBatch, Status: wire.StatusErr}
		}
		if berr != nil {
			return wire.Response{Kind: wire.RespBatch, Status: wire.StatusOf(berr)}
		}
		c.tsV2 = srv.lanes.Published(c.tsV2)
		stable, uncertain, high := true, false, uint64(0)
		for ln, in := range c.laneMark {
			if !in || c.tsV2[ln] == c.tsV1[ln] {
				continue
			}
			stable = false
			if c.tsV2[ln] > high {
				high = c.tsV2[ln]
			}
			if ord := srv.cfg.Ordo; ord != nil &&
				ord.CmpTime(core.Time(startTS), core.Time(c.tsV2[ln])) == 0 {
				uncertain = true
			}
		}
		if stable {
			return wire.Response{Kind: wire.RespBatch, Status: wire.StatusOK, Batch: resps}
		}
		if uncertain {
			// Only inside the uncertainty window: the client genuinely
			// cannot be told an order yet. TS carries the interfering
			// board timestamp, mirroring the follower watermark contract.
			srv.m.crossNotYet.Add(1)
			return wire.Response{Kind: wire.RespBatch, Status: wire.StatusNotYet, TS: high}
		}
		srv.m.crossRetries.Add(1)
	}
	// Stable conflict pressure: take the pessimistic barrier and read on
	// the worker session while the involved lanes are parked.
	srv.crossMu.Lock()
	defer srv.crossMu.Unlock()
	release := c.parkInvolved()
	defer release()
	err := db.RunWithRetry(c.sess, srv.cfg.MaxRetries, func(tx db.Tx) error {
		for i := range req.Ops {
			r, err := srv.execOp(tx, &req.Ops[i])
			if err != nil {
				return err
			}
			resps[i] = r
		}
		return nil
	})
	if err != nil {
		return wire.Response{Kind: wire.RespBatch, Status: wire.StatusOf(err)}
	}
	return wire.Response{Kind: wire.RespBatch, Status: wire.StatusOK, Batch: resps}
}

// txnHasWrites reports whether a TXN frame contains any mutating sub-op.
func txnHasWrites(req *wire.Request) bool {
	for i := range req.Ops {
		if isWrite(req.Ops[i].Op) {
			return true
		}
	}
	return false
}

// execStats answers a STATS frame from server metrics.
func (c *serverConn) execStats() wire.Response {
	c.srv.m.statsOps.Add(1)
	m := &c.srv.m
	st := &wire.Stats{
		Protocol:         c.srv.cfg.DB.Protocol().String(),
		Commits:          m.commits.Load(),
		Aborts:           m.aborts.Load(),
		Batches:          m.batches.Load(),
		BatchedOps:       m.batchedOps.Load(),
		Busy:             m.busy.Load(),
		Degraded:         m.degraded.Load(),
		ClockCmps:        m.clockCmps.Load(),
		ClockUncertain:   m.clockUncertain.Load(),
		WALFlushes:       m.walFlushes.Load(),
		WALRecords:       m.walRecords.Load(),
		WALDeviceErrors:  m.walDeviceErrors.Load(),
		WALUnackedWrites: m.walUnackedWrites.Load(),
	}
	if c.srv.gc != nil {
		st.WALSyncNsP99 = c.srv.gc.syncP99()
	}
	if r := c.srv.cfg.Recovery; r != nil {
		st.RecoveredRecords = uint64(r.Records)
		st.TruncatedBytes = uint64(r.TruncatedBytes)
	}
	if rs := c.srv.cfg.Repl; rs != nil {
		st.ReplFollowers = uint64(rs.Followers())
		st.ReplLagRecords = rs.Lag()
		st.ReplWatermarkNS = rs.WatermarkNS()
		st.ReplEpoch = rs.Epoch()
		st.ReplRoleCode = uint64(rs.Role())
		st.Promotions = rs.Promotions()
		st.Fencings = rs.Fencings()
		st.ReplReconnects = rs.Reconnects()
	}
	return wire.Response{Kind: wire.RespStats, Status: wire.StatusOK, Stats: st}
}

// execOp applies one simple op inside tx. Row-level outcomes (NOT_FOUND,
// DUPLICATE) become per-op statuses and do not abort the surrounding
// transaction; conflicts and unexpected errors propagate so the whole
// attempt aborts and retries.
func (s *Server) execOp(tx db.Tx, req *wire.Request) (wire.Response, error) {
	if err := s.validateOp(req); err != nil {
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusErr}, nil
	}
	var err error
	switch req.Op {
	case wire.OpGet:
		var vals []uint64
		vals, err = tx.Read(int(req.Table), req.Key)
		if err == nil {
			return wire.Response{Kind: wire.RespRow, Status: wire.StatusOK, Row: vals}, nil
		}
	case wire.OpGetAt:
		// The watermark gate: on a follower, a read demanding MinTS above
		// the safe-read watermark cannot be answered consistently yet —
		// the apply stream may still hold earlier-timestamped commits. The
		// NOT_YET answer carries the current watermark so the client can
		// back off or fall to another replica. Leaders and unreplicated
		// servers serve GET_AT exactly like GET: every acked write is
		// already visible there.
		if st := s.cfg.Repl; st != nil && st.Role() == RoleFollower {
			if w := st.Watermark(); req.MinTS > w {
				return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusNotYet, TS: w}, nil
			}
		}
		var vals []uint64
		vals, err = tx.Read(int(req.Table), req.Key)
		if err == nil {
			return wire.Response{Kind: wire.RespRow, Status: wire.StatusOK, Row: vals}, nil
		}
	case wire.OpPut:
		err = tx.Update(int(req.Table), req.Key, req.Vals)
	case wire.OpInsert:
		err = tx.Insert(int(req.Table), req.Key, req.Vals)
	case wire.OpDelete:
		err = tx.Delete(int(req.Table), req.Key)
	default:
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusErr}, nil
	}
	if err == nil {
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusOK}, nil
	}
	if errors.Is(err, db.ErrNotFound) || errors.Is(err, db.ErrDuplicate) {
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusOf(err)}, nil
	}
	return wire.Response{}, err
}
