package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"ordo/internal/db"
	"ordo/internal/telemetry"
	"ordo/internal/telemetry/span"
	"ordo/internal/wire"
)

// tracedTelemetry builds a Telemetry with distributed tracing enabled at
// the given head-sampling rate, returning it and its ring.
func tracedTelemetry(rate float64) (*Telemetry, *span.Ring) {
	tel := NewTelemetry(telemetry.NewRegistry(), telemetry.NewTracer(64), time.Second)
	ring := span.NewRing(span.RingConfig{Node: "test-node"})
	tel.EnableTracing(ring, rate)
	return tel, ring
}

// stagesOf collects the distinct stages present in a set of spans.
func stagesOf(spans []span.Span) map[span.Stage]bool {
	m := map[span.Stage]bool{}
	for i := range spans {
		m[spans[i].Stage] = true
	}
	return m
}

// TestTracedWriteSpansEndToEnd drives one client-stamped traced PUT through
// a durable server and requires the full leader-side span set — queue,
// decode, lane, commit, wal_append, fsync, ack — to land in the ring under
// the client's trace ID, even though head sampling is off (a client-stamped
// request is force-sampled).
func TestTracedWriteSpansEndToEnd(t *testing.T) {
	cfg, dev := durableConfig(t, t.TempDir())
	defer dev.Close()
	tel, ring := tracedTelemetry(0)
	cfg.Telemetry = tel
	ts, cleanup := startServer(t, cfg)
	defer cleanup()
	c := ts.c

	const traceID = 0xfeedc0de12345678
	resp, err := c.Do(&wire.Request{Op: wire.OpInsert, Key: 7, Vals: row(7), Trace: traceID})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("traced insert answered %v, want OK", resp.Status)
	}

	// The fsync span is recorded by the flusher after it wakes the waiting
	// worker, so it can trail the client's ack by a scheduling quantum.
	want := []span.Stage{span.StageQueue, span.StageDecode, span.StageLane,
		span.StageCommit, span.StageWALAppend, span.StageFsync, span.StageAck}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := stagesOf(ring.Dump(traceID, 0).Spans)
		missing := ""
		for _, st := range want {
			if !got[st] {
				missing += " " + st.String()
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %016x missing stages:%s (got %v)", uint64(traceID), missing, got)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every span carries the node name, and the merged timeline never
	// orders fsync before wal_append when their intervals are disjoint.
	d := ring.Dump(traceID, 0)
	for i := range d.Spans {
		if d.Spans[i].Node != "test-node" {
			t.Fatalf("span %v stamped node %q, want test-node", d.Spans[i].Stage, d.Spans[i].Node)
		}
	}
	merged := span.Merge(d.Spans)
	seen := map[span.Stage]int{}
	for i := range merged {
		seen[merged[i].Stage] = i
	}
	if ai, fi := seen[span.StageWALAppend], seen[span.StageFsync]; ai > fi && !merged[ai].Concurrent && !merged[fi].Concurrent {
		t.Fatalf("merge ordered fsync (pos %d) before wal_append (pos %d) with disjoint intervals", fi, ai)
	}

	// An untraced op on the same connection must not publish spans: the
	// ring holds exactly one trace.
	if resp, err := c.Do(&wire.Request{Op: wire.OpGet, Key: 7}); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("untraced get: %v %v", resp.Status, err)
	}
	all := ring.Dump(0, 0)
	for i := range all.Spans {
		if all.Spans[i].Trace != traceID {
			t.Fatalf("unsampled run leaked span %+v", all.Spans[i])
		}
	}
}

// TestSpansAdminEndpoint exercises the /spans admin endpoint: trace and
// limit filters on a live ring, and 404 when tracing is off.
func TestSpansAdminEndpoint(t *testing.T) {
	cfg, dev := durableConfig(t, t.TempDir())
	defer dev.Close()
	tel, ring := tracedTelemetry(0)
	cfg.Telemetry = tel
	ts, cleanup := startServer(t, cfg)
	defer cleanup()

	const traceID = 0xabcdef0101010101
	if resp, err := ts.c.Do(&wire.Request{Op: wire.OpInsert, Key: 1, Vals: row(1), Trace: traceID}); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("traced insert: %v %v", resp.Status, err)
	}
	if len(ring.Dump(traceID, 0).Spans) == 0 {
		t.Fatal("no spans recorded")
	}

	adm := httptest.NewServer(NewAdminHandler(ts.srv))
	defer adm.Close()

	get := func(path string) (int, []byte) {
		resp, err := adm.Client().Get(adm.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get(fmt.Sprintf("/spans?trace=%016x&limit=3", uint64(traceID)))
	if code != 200 {
		t.Fatalf("/spans: %d: %s", code, body)
	}
	var d span.Dump
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("/spans JSON: %v", err)
	}
	if d.Node != "test-node" || len(d.Spans) == 0 || len(d.Spans) > 3 {
		t.Fatalf("/spans dump: node=%q spans=%d, want test-node and 1..3", d.Node, len(d.Spans))
	}
	for i := range d.Spans {
		if d.Spans[i].Trace != traceID {
			t.Fatalf("trace filter leaked %+v", d.Spans[i])
		}
	}
	if code, body := get("/spans?trace=zzz"); code != 400 {
		t.Fatalf("bad trace id: %d: %s", code, body)
	}

	// Tracing off: /spans must 404, like /metrics with telemetry off.
	plain, cleanup2 := startServer(t, newYCSBServer(t, db.OCC))
	defer cleanup2()
	adm2 := httptest.NewServer(NewAdminHandler(plain.srv))
	defer adm2.Close()
	resp, err := adm2.Client().Get(adm2.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/spans with tracing off: %d, want 404", resp.StatusCode)
	}
}

// TestSpanCaptureSamplingOffZeroAlloc gates the tentpole's overhead budget:
// with tracing compiled in and enabled but the run unsampled, the worker's
// speculative span capture (begin, decode note, ack note, abandon) must not
// allocate. This is the path every request takes at sampling rate 0.
func TestSpanCaptureSamplingOffZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	c, cleanup := newSpanConn(t, 0)
	defer cleanup()

	reqs := []wire.Request{{Op: wire.OpGet, Key: 1}}
	allocs := testing.AllocsPerRun(1000, func() {
		c.beginRunSpans(time.Microsecond)
		c.noteDecodeSpans(reqs)
		c.noteSpan(span.StageAck, time.Microsecond)
		c.finishRunSpans(time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("sampling-off span capture: %v allocs/run, want 0", allocs)
	}
}

// TestSpanCaptureSampledBoundedAlloc bounds the sampled path: publishing a
// run's spans into the preallocated ring must stay allocation-free too —
// the sampling cost is clock reads and a mutex, not garbage.
func TestSpanCaptureSampledBoundedAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	c, cleanup := newSpanConn(t, 1)
	defer cleanup()

	reqs := []wire.Request{{Op: wire.OpGet, Key: 1}}
	allocs := testing.AllocsPerRun(1000, func() {
		c.beginRunSpans(time.Microsecond)
		c.noteDecodeSpans(reqs)
		c.noteSpan(span.StageAck, time.Microsecond)
		c.finishRunSpans(time.Microsecond)
	})
	if allocs > 1 {
		t.Fatalf("sampled span capture: %v allocs/run, want <= 1", allocs)
	}
}

// newSpanConn builds a serverConn wired to a tracing-enabled server for
// direct span-capture measurement, without serving a listener.
func newSpanConn(t *testing.T, rate float64) (*serverConn, func()) {
	t.Helper()
	tel, _ := tracedTelemetry(rate)
	srv, err := New(Config{DB: &fakeDB{}, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	c := newServerConn(srv, a)
	return c, func() {
		a.Close()
		b.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
}
