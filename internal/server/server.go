// Package server is ordod's network engine: it serves the wire protocol
// over TCP on top of any db.DB, which makes the Ordo-vs-logical-clock
// choice observable from outside the process for the first time — the same
// engine, the same workload, different timestamp allocation, measured
// through a socket.
//
// The serving model is built around the paper's economics. Timestamp
// allocation is the scalability bottleneck (§6.5), so the server amortizes
// it: each connection has one reader goroutine and one worker goroutine,
// and the worker folds a connection's pipelined simple ops into a single
// engine transaction — one begin timestamp, one commit timestamp, one
// validation — instead of one commit per op (see DESIGN.md §8 for why that
// preserves the ordering argument). Responses flow back in request order
// through a flushing buffered writer, so a pipelining client never pays a
// syscall per op on either side.
//
// Overload is handled by shedding, not queueing: each connection's pending
// queue is bounded, and ops beyond the bound are answered with a typed BUSY
// status in order, without touching the engine. Conflicted batches retry
// with capped exponential backoff (db.RunWithRetry); batches that still
// fail fall back to per-op transactions so every op gets an attributable
// status. Shutdown drains: accepted requests are executed and their
// responses flushed before connections close.
package server

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/health"
	"ordo/internal/shard"
	"ordo/internal/telemetry/span"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// Config parameterizes a Server. DB is required; everything else defaults.
type Config struct {
	// DB is the engine to serve.
	DB db.DB

	// Schema, when non-zero, enables request validation: table ids must be
	// in range and PUT/INSERT rows must match the table's fixed width.
	// Invalid ops are answered with ERR without reaching the engine.
	Schema db.Schema

	// Shards is the number of single-writer partition lanes the keyspace is
	// hashed across. Each lane owns one engine session and one WAL append
	// stream, and is the only goroutine that writes its partition; cross-
	// shard operations are stitched back into one order with Ordo timestamp
	// comparison. Zero means one lane (the pre-shard behavior); values are
	// clamped to MaxShards.
	Shards int

	// Ordo, when set, gives cross-shard reads an uncertainty test: a read
	// that races a commit whose timestamp is Ordo-incomparable with the
	// read's start answers NOT_YET instead of retrying blindly. Nil (logical
	// clocks) means every interference is definitely ordered and the server
	// never answers NOT_YET.
	Ordo *core.Ordo

	// MaxBatch caps how many pipelined simple ops one engine transaction
	// absorbs. Zero means DefaultMaxBatch.
	MaxBatch int

	// QueueDepth bounds each connection's pending-op queue; ops arriving
	// beyond it are shed with BUSY. Zero means DefaultQueueDepth.
	QueueDepth int

	// MaxRetries caps conflict retries per engine transaction (attempts =
	// MaxRetries+1). Zero means DefaultMaxRetries; negative means none.
	MaxRetries int

	// IdleTimeout evicts a connection whose client sends no complete
	// request for this long: the reader's deadline expires, the worker
	// finishes whatever was already queued, and the connection closes.
	// Zero disables idle eviction.
	IdleTimeout time.Duration

	// WriteTimeout bounds each response write and flush. A client that
	// stops reading long enough for the kernel's send buffer to fill is
	// evicted instead of parking the worker (and its engine session) on a
	// blocked write. Zero disables write deadlines.
	WriteTimeout time.Duration

	// Monitor, when set, contributes the clock-health snapshot to
	// Snapshot(); the server does not start or stop it.
	Monitor *health.Monitor

	// WAL, when set, enables durable serving: committed write-sets append
	// redo records to per-connection handles and responses are withheld
	// until a group-commit flush covers the batch's commit timestamp. The
	// engine must expose commit timestamps (db.CommitTS) — the OCC and
	// Hekaton families do; Silo and TicToc have no machine-wide commit
	// point and cannot serve durably. The server owns flushing but not the
	// underlying device: close the device after Shutdown returns.
	WAL *wal.Log

	// Recovery, when set, is the startup recovery this server's engine was
	// seeded from; it rides along in Snapshot() and STATS responses.
	Recovery *wal.RecoveryInfo

	// ReadOnly refuses every mutating op without touching the engine —
	// follower-mode serving, where the engine's only writer is the
	// replication apply loop. Reads (GET, GET_AT, read-only TXNs) serve
	// normally. The refusal status is ERR, or NOT_LEADER with a redirect
	// when Repl knows a leader address (failover mode). This is only the
	// initial value: failover promotion flips it at runtime via
	// SetReadOnly.
	ReadOnly bool

	// ReplAckBound, when positive, gates durable write acks on follower
	// acknowledgment: after a write's redo is locally durable, the ack is
	// additionally withheld until a follower of the current incarnation
	// has acknowledged the covering flush (Server.NoteReplAck), or until
	// this bound elapses — in which case the write is answered ERR, like
	// a WAL failure. While no follower is subscribed the gate is waived
	// by the repl source advancing the ack with its own tail (crash-stop
	// single-failure model: with zero followers there is nobody to
	// promote, so gating would buy nothing and block everything). Zero
	// disables the gate (async replication, the pre-failover behavior).
	ReplAckBound time.Duration

	// Repl, when set, attaches the replication scoreboard: STATS and
	// Snapshot() gain repl fields, /healthz applies the follower lag rule,
	// and on a follower GET_AT is gated on the safe-read watermark.
	Repl *ReplState

	// Telemetry, when set, wires the server's counters and latency
	// histograms into a metrics registry and event tracer (telemetry.go).
	// New binds it and installs the WAL flush observer on Config.WAL; a
	// Telemetry instance serves exactly one Server.
	Telemetry *Telemetry

	// Logf receives connection-level diagnostics. Nil discards them.
	Logf func(format string, args ...any)
}

// Defaults for Config's zero values.
const (
	DefaultMaxBatch   = 64
	DefaultQueueDepth = 1024
	DefaultMaxRetries = 10

	// MaxShards bounds Config.Shards: past the core count lanes only add
	// scheduling overhead, and per-conn ring memory scales with the product
	// of connections and lanes.
	MaxShards = 64
)

// Server serves the wire protocol over accepted connections.
type Server struct {
	cfg Config

	mu         sync.Mutex
	listeners  map[net.Listener]struct{}
	conns      map[*serverConn]struct{}
	inShutdown atomic.Bool
	wg         sync.WaitGroup

	// readOnly starts as Config.ReadOnly and flips on failover promotion.
	readOnly atomic.Bool

	// gc is the group committer; nil when serving without durability.
	gc *groupCommitter

	// lanes is the single-writer partition fabric; runners hold each lane's
	// server-side policy (session, WAL handle, scratch). Built in New,
	// stopped once by closeLanes during Shutdown.
	lanes     *shard.Set
	runners   []*laneRunner
	lanesOnce sync.Once

	// crossMu serializes cross-shard coordinators: overlapping lane subsets
	// parked in arbitrary order would deadlock otherwise.
	crossMu sync.Mutex

	m metrics
}

// metrics is the server-wide counter set. Workers add deltas after every
// execution unit, so reads are race-free and never touch live sessions.
type metrics struct {
	connsTotal  atomic.Uint64
	connsActive atomic.Int64

	gets, puts, inserts, deletes atomic.Uint64
	txns, txnOps, statsOps       atomic.Uint64

	batches, batchedOps atomic.Uint64
	// Cross-shard coordination: TXNs that spanned lanes, Ordo-merged
	// cross-shard reads, their optimistic retries, and the reads refused
	// with NOT_YET because the interfering commit fell inside the
	// uncertainty window.
	crossTxns, crossReads     atomic.Uint64
	crossRetries, crossNotYet atomic.Uint64
	busy                      atomic.Uint64
	degraded            atomic.Uint64
	protoErrs           atomic.Uint64
	evictions           atomic.Uint64
	panics              atomic.Uint64

	commits, aborts           atomic.Uint64
	clockCmps, clockUncertain atomic.Uint64

	walFlushes, walRecords atomic.Uint64
	walDeviceErrors        atomic.Uint64
	// walUnackedWrites counts writes that committed in the in-memory engine
	// but were answered ERR because the log could not make them durable:
	// until restart they are visible to readers despite never being acked
	// (DESIGN.md §10), so operators can see how much unlogged state a
	// degraded engine is serving.
	walUnackedWrites atomic.Uint64
}

// Snapshot is a point-in-time JSON-marshalable view of the server,
// following the same expvar conventions as health.Snapshot; when a Monitor
// is attached its clock-health snapshot rides along, so one document shows
// protocol-level commits next to boundary state and uncertainty rates.
type Snapshot struct {
	Protocol    string `json:"protocol"`
	ConnsTotal  uint64 `json:"conns_total"`
	ConnsActive int64  `json:"conns_active"`

	Gets     uint64 `json:"ops_get"`
	Puts     uint64 `json:"ops_put"`
	Inserts  uint64 `json:"ops_insert"`
	Deletes  uint64 `json:"ops_delete"`
	Txns     uint64 `json:"ops_txn"`
	TxnOps   uint64 `json:"txn_inner_ops"`
	StatsOps uint64 `json:"ops_stats"`

	Batches    uint64  `json:"batches"`
	BatchedOps uint64  `json:"batched_ops"`
	AvgBatch   float64 `json:"avg_batch,omitempty"`

	Shards       int    `json:"shards"`
	CrossTxns    uint64 `json:"cross_shard_txns"`
	CrossReads   uint64 `json:"cross_shard_reads"`
	CrossRetries uint64 `json:"cross_shard_retries"`
	CrossNotYet  uint64 `json:"cross_shard_not_yet"`

	Busy       uint64  `json:"busy_shed"`
	Degraded   uint64  `json:"degraded"`
	ProtoErrs  uint64  `json:"protocol_errors"`
	Evictions  uint64  `json:"evictions"`
	Panics     uint64  `json:"panics"`

	Commits        uint64  `json:"commits"`
	Aborts         uint64  `json:"aborts"`
	ClockCmps      uint64  `json:"clock_cmps"`
	ClockUncertain uint64  `json:"clock_uncertain"`
	UncertainRate  float64 `json:"uncertain_rate"`

	// WAL counters; all zero when serving without durability.
	WALFlushes       uint64 `json:"wal_flushes"`
	WALRecords       uint64 `json:"wal_records"`
	WALSyncNsP99     uint64 `json:"wal_sync_ns_p99"`
	WALDeviceErrors  uint64 `json:"wal_device_errors"`
	WALUnackedWrites uint64 `json:"wal_unacked_writes"`
	RecoveredRecords uint64 `json:"recovered_records"`
	TruncatedBytes   uint64 `json:"truncated_bytes"`

	// Replication fields; zero/absent on an unreplicated server.
	ReplRole        string `json:"repl_role,omitempty"`
	ReplFollowers   uint64 `json:"repl_followers"`
	ReplLagRecords  uint64 `json:"repl_lag_records"`
	ReplWatermarkNS uint64 `json:"repl_watermark_ns"`
	ReplAppliedRecs uint64 `json:"repl_applied_records"`
	ReplAppliedB    uint64 `json:"repl_applied_bytes"`

	// Failover fields; zero/absent outside failover mode.
	ReplEpoch      uint64 `json:"repl_epoch"`
	Promotions     uint64 `json:"promotions"`
	Fencings       uint64 `json:"fencings"`
	ReplReconnects uint64 `json:"repl_reconnects"`
	LeaderAddr     string `json:"leader_addr,omitempty"`

	Clock *health.Snapshot `json:"clock_health,omitempty"`
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	} else if cfg.Shards > MaxShards {
		cfg.Shards = MaxShards
	}
	s := &Server{
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*serverConn]struct{}),
	}
	s.readOnly.Store(cfg.ReadOnly)
	if cfg.WAL != nil {
		// Durable serving needs the engine's own commit timestamps so
		// replay order matches commit order; probe a throwaway session.
		if _, ok := cfg.DB.NewSession().(db.CommitTS); !ok {
			return nil, fmt.Errorf("server: durable serving requires commit timestamps; protocol %v does not expose them (use OCC, OCC_ORDO, HEKATON, or HEKATON_ORDO)", cfg.DB.Protocol())
		}
		s.gc = newGroupCommitter(s, cfg.WAL)
	}
	// The lane fabric: one runner (engine session + WAL append stream) per
	// shard, then the goroutine set that drains connection rings into them.
	// Runners must exist before NewSet starts the goroutines — a lane could
	// drain a batch immediately.
	s.runners = make([]*laneRunner, s.cfg.Shards)
	for i := range s.runners {
		r := &laneRunner{srv: s, id: i, sess: cfg.DB.NewSession()}
		if s.gc != nil {
			r.wh = s.gc.log.NewHandle()
		}
		s.runners[i] = r
	}
	s.lanes = shard.NewSet(s.cfg.Shards, func(lane int, b *shard.Batch) uint64 {
		return s.runners[lane].exec(b)
	})
	if cfg.Telemetry != nil {
		if err := cfg.Telemetry.bind(s); err != nil {
			s.closeLanes()
			return nil, err
		}
		if cfg.WAL != nil {
			cfg.WAL.SetObserver(cfg.Telemetry.WALFlushObserver())
		}
	}
	return s, nil
}

// spanRing returns the node's distributed-tracing span ring, nil when
// tracing is off (no Telemetry, or EnableTracing never called).
func (s *Server) spanRing() *span.Ring {
	if s.cfg.Telemetry == nil {
		return nil
	}
	return s.cfg.Telemetry.spans
}

// Degraded reports whether the WAL device has failed: the server still
// serves reads from the intact in-memory engine but refuses writes, and
// the admin /healthz endpoint turns non-200.
func (s *Server) Degraded() bool {
	return s.gc != nil && s.gc.failed() != nil
}

// ReadOnly reports whether mutating ops are currently refused.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// SetReadOnly flips write refusal at runtime — the failover promotion
// (false) and demotion (true) switch. In-flight batches finish under the
// old setting; only ops that start after the flip observe it.
func (s *Server) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// NoteReplAck records that a follower of the current incarnation has
// durably acknowledged the stream through LSN seq; write acks gated by
// Config.ReplAckBound release once their covering flush is acknowledged.
// No-op on a server without a WAL.
func (s *Server) NoteReplAck(seq uint64) {
	if s.gc != nil {
		s.gc.noteReplAck(seq)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections from ln until Shutdown (returning nil) or a
// fatal accept error. Multiple Serve calls on different listeners are
// allowed.
func (s *Server) Serve(ln net.Listener) error {
	// Register under the lock Shutdown holds while closing listeners:
	// checking inShutdown before taking s.mu would let a listener slip in
	// concurrently with Shutdown and keep accepting after the drain.
	s.mu.Lock()
	if s.inShutdown.Load() {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()

	var delay time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.inShutdown.Load() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// Transient accept failure: back off briefly and keep
				// serving instead of tearing the listener down.
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else if delay *= 2; delay > 250*time.Millisecond {
					delay = 250 * time.Millisecond
				}
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		s.startConn(nc)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// startConn registers and launches one connection's goroutine pair.
func (s *Server) startConn(nc net.Conn) {
	c := newServerConn(s, nc)
	s.mu.Lock()
	if s.inShutdown.Load() {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()

	s.m.connsTotal.Add(1)
	s.m.connsActive.Add(1)
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		c.readLoop()
	}()
	go func() {
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
			s.m.connsActive.Add(-1)
		}()
		c.workLoop()
	}()
}

// Shutdown gracefully drains the server: listeners stop accepting, every
// connection finishes the requests it has already read — responses flushed
// — and then closes. It returns ctx's error if the drain outlives it, in
// which case remaining connections are closed hard.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.mu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.beginDrain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeLanes()
		s.stopWAL()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		s.closeLanes()
		s.stopWAL()
		return ctx.Err()
	}
}

// closeLanes stops the lane goroutines and releases their WAL handles.
// Called after every connection worker has exited (no new submissions) and
// before stopWAL (anything a lane appended still reaches the final flush).
// Once-guarded: Shutdown can run without Serve ever having been called.
func (s *Server) closeLanes() {
	s.lanesOnce.Do(func() {
		s.lanes.Close()
		for _, r := range s.runners {
			if r.wh != nil {
				r.wh.Close()
			}
			r.flushSessionStats()
		}
	})
}

// stopWAL runs the group committer's final flush and stops its flusher.
// Called after every connection has drained, so no commit races the close.
func (s *Server) stopWAL() {
	if s.gc != nil {
		s.gc.closeAndWait()
	}
}

// Snapshot returns the server's counter snapshot, including the attached
// Monitor's clock-health snapshot when one is configured.
func (s *Server) Snapshot() Snapshot {
	m := &s.m
	snap := Snapshot{
		Protocol:       s.cfg.DB.Protocol().String(),
		ConnsTotal:     m.connsTotal.Load(),
		ConnsActive:    m.connsActive.Load(),
		Gets:           m.gets.Load(),
		Puts:           m.puts.Load(),
		Inserts:        m.inserts.Load(),
		Deletes:        m.deletes.Load(),
		Txns:           m.txns.Load(),
		TxnOps:         m.txnOps.Load(),
		StatsOps:       m.statsOps.Load(),
		Batches:        m.batches.Load(),
		BatchedOps:     m.batchedOps.Load(),
		Shards:         s.cfg.Shards,
		CrossTxns:      m.crossTxns.Load(),
		CrossReads:     m.crossReads.Load(),
		CrossRetries:   m.crossRetries.Load(),
		CrossNotYet:    m.crossNotYet.Load(),
		Busy:           m.busy.Load(),
		Degraded:       m.degraded.Load(),
		ProtoErrs:      m.protoErrs.Load(),
		Evictions:      m.evictions.Load(),
		Panics:         m.panics.Load(),
		Commits:        m.commits.Load(),
		Aborts:         m.aborts.Load(),
		ClockCmps:      m.clockCmps.Load(),
		ClockUncertain: m.clockUncertain.Load(),
	}
	if snap.Batches > 0 {
		snap.AvgBatch = float64(snap.BatchedOps) / float64(snap.Batches)
	}
	if snap.ClockCmps > 0 {
		snap.UncertainRate = float64(snap.ClockUncertain) / float64(snap.ClockCmps)
	}
	snap.WALFlushes = m.walFlushes.Load()
	snap.WALRecords = m.walRecords.Load()
	snap.WALDeviceErrors = m.walDeviceErrors.Load()
	snap.WALUnackedWrites = m.walUnackedWrites.Load()
	if s.gc != nil {
		snap.WALSyncNsP99 = s.gc.syncP99()
	}
	if r := s.cfg.Recovery; r != nil {
		snap.RecoveredRecords = uint64(r.Records)
		snap.TruncatedBytes = uint64(r.TruncatedBytes)
	}
	if st := s.cfg.Repl; st != nil {
		snap.ReplRole = st.Role().String()
		snap.ReplFollowers = uint64(st.Followers())
		snap.ReplLagRecords = st.Lag()
		snap.ReplWatermarkNS = st.WatermarkNS()
		snap.ReplAppliedRecs = st.AppliedRecords()
		snap.ReplAppliedB = st.AppliedBytes()
		snap.ReplEpoch = st.Epoch()
		snap.Promotions = st.Promotions()
		snap.Fencings = st.Fencings()
		snap.ReplReconnects = st.Reconnects()
		snap.LeaderAddr = st.LeaderAddr()
	}
	if s.cfg.Monitor != nil {
		clock := s.cfg.Monitor.Snapshot()
		snap.Clock = &clock
	}
	return snap
}

// Expvar adapts the Server to the expvar interface; publish it with
// expvar.Publish("ordod", srv.Expvar()) to expose the snapshot on
// /debug/vars alongside ordo.health.
func (s *Server) Expvar() expvar.Func {
	return expvar.Func(func() any { return s.Snapshot() })
}

// validateOp pre-checks one simple op against the configured schema.
func (s *Server) validateOp(r *wire.Request) error {
	if len(s.cfg.Schema.Tables) == 0 {
		return nil
	}
	if int(r.Table) >= len(s.cfg.Schema.Tables) {
		return fmt.Errorf("table %d out of range", r.Table)
	}
	if r.Op == wire.OpPut || r.Op == wire.OpInsert {
		if want := s.cfg.Schema.Tables[r.Table].Cols; len(r.Vals) != want {
			return fmt.Errorf("table %d row width %d, want %d", r.Table, len(r.Vals), want)
		}
	}
	return nil
}
