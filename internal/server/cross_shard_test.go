package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/faultnet"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// Cross-shard linearizability run shape: a bank of accounts hashed across 4
// lanes, writers moving money with atomic multi-key TXNs, readers sweeping
// account sets with cmp_time-merged cross-shard reads. The invariant is the
// stm-bank one lifted to the wire path: total money is conserved, and no
// merged read may ever observe a transfer half-applied.
const (
	xsLanes     = 4
	xsWriters   = 4
	xsAccounts  = 8 // per writer; disjoint ranges keep each writer's cache authoritative
	xsBalance   = 100
	xsTransfers = 150
	xsHang      = 15 * time.Second
)

func xsFaults() faultnet.Config {
	return faultnet.Config{
		Seed: chaosSeed(),
		// Gentler than the chaos run: resets cost a cache resync round-trip
		// per writer, so keep them rare enough that transfers dominate.
		LatencyProb: 0.15, MaxLatency: time.Millisecond,
		StallProb: 0.005, Stall: 200 * time.Millisecond,
		PartialProb: 0.15, ChunkDelay: time.Millisecond,
		ResetProb: 0.004,
	}
}

// TestCrossShardTxnLinearizability drives concurrent transfers across lanes
// through faultnet and asserts, from three vantage points, that the
// cross-shard coordination never tears a transfer: live merged reads see a
// conserved total, the drained engine holds the exact cache state of every
// writer, and a recovery replay of the drained WAL reproduces the same
// conserved total (the one-coordinator-record guarantee).
func TestCrossShardTxnLinearizability(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	ordo := core.New(core.Hardware, 1000)
	schema := db.Schema{Tables: []db.TableDef{{Name: "acct", Cols: 1}}}
	engine, err := db.New(db.OCCOrdo, schema, ordo)
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	dev, err := wal.OpenFile(walDir, wal.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		DB:           engine,
		Schema:       schema,
		Shards:       xsLanes,
		Ordo:         ordo,
		MaxBatch:     16,
		QueueDepth:   64,
		IdleTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		WAL:          wal.New(dev, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	cleanLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faultLn := faultnet.Wrap(rawLn, xsFaults())
	serveDone := make(chan error, 2)
	go func() { serveDone <- srv.Serve(cleanLn) }()
	go func() { serveDone <- srv.Serve(faultLn) }()
	cleanAddr, faultAddr := cleanLn.Addr().String(), rawLn.Addr().String()

	// Preload every account with its opening balance through the clean
	// listener.
	func() {
		nc, err := net.Dial("tcp", cleanAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		c := wire.NewConn(nc)
		for k := uint64(0); k < xsWriters*xsAccounts; k++ {
			resp, err := c.Do(&wire.Request{Op: wire.OpInsert, Key: k, Vals: []uint64{xsBalance}})
			if err != nil || resp.Status != wire.StatusOK {
				t.Fatalf("preload key %d: %+v, %v", k, resp, err)
			}
		}
	}()

	var (
		writersWg   sync.WaitGroup
		readersWg   sync.WaitGroup
		stopReaders atomic.Bool
		okReads     atomic.Uint64
		errs        = make(chan error, xsWriters+2)
		finals      = make([][]uint64, xsWriters)
	)
	for w := 0; w < xsWriters; w++ {
		writersWg.Add(1)
		go func(w int) {
			defer writersWg.Done()
			bal, err := xsWriter(w, faultAddr, cleanAddr)
			finals[w] = bal
			if err != nil {
				errs <- fmt.Errorf("writer %d: %w", w, err)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readersWg.Add(1)
		go func(r int) {
			defer readersWg.Done()
			if err := xsReader(r, faultAddr, &stopReaders, &okReads); err != nil {
				errs <- fmt.Errorf("reader %d: %w", r, err)
			}
		}(r)
	}
	writersWg.Wait()
	stopReaders.Store(true)
	readersWg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if okReads.Load() == 0 {
		t.Fatal("no merged cross-shard read ever succeeded — the invariant was never checked")
	}

	// Final sweep through the clean listener: one cross-shard read-only TXN
	// over the whole bank must see exactly the conserved total, and each
	// account must hold exactly what its single writer's cache says.
	nc, err := net.Dial("tcp", cleanAddr)
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(nc)
	ops := make([]wire.Request, xsWriters*xsAccounts)
	for k := range ops {
		ops[k] = wire.Request{Op: wire.OpGet, Key: uint64(k)}
	}
	var total uint64
	for {
		resp, err := c.Do(&wire.Request{Op: wire.OpTxn, Ops: ops})
		if err != nil {
			t.Fatalf("final sweep: %v", err)
		}
		if resp.Status == wire.StatusNotYet || resp.Status == wire.StatusConflict {
			continue
		}
		if resp.Status != wire.StatusOK || len(resp.Batch) != len(ops) {
			t.Fatalf("final sweep answered %v with %d rows", resp.Status, len(resp.Batch))
		}
		for k, sub := range resp.Batch {
			if sub.Status != wire.StatusOK || len(sub.Row) != 1 {
				t.Fatalf("final sweep key %d: %+v", k, sub)
			}
			w, a := k/xsAccounts, k%xsAccounts
			if finals[w] != nil && sub.Row[0] != finals[w][a] {
				t.Fatalf("account %d holds %d, writer %d cache says %d", k, sub.Row[0], w, finals[w][a])
			}
			total += sub.Row[0]
		}
		break
	}
	nc.Close()
	if want := uint64(xsWriters * xsAccounts * xsBalance); total != want {
		t.Fatalf("total money %d, want %d — a transfer tore", total, want)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-serveDone; err != nil {
			t.Fatalf("serve: %v", err)
		}
	}
	snap := srv.Snapshot()
	if snap.Panics != 0 {
		t.Fatalf("panics: %d", snap.Panics)
	}
	if snap.CrossTxns == 0 {
		t.Fatal("no transfer ever crossed lanes — the test exercised nothing")
	}
	if snap.CrossReads == 0 {
		t.Fatal("no read was ever merged across lanes")
	}
	t.Logf("cross-shard: txns=%d cross_txns=%d cross_reads=%d retries=%d not_yet=%d ok_reads=%d",
		snap.Txns, snap.CrossTxns, snap.CrossReads, snap.CrossRetries, snap.CrossNotYet, okReads.Load())

	// Crash-recovery vantage point: replay the drained log into a fresh
	// engine. Every transfer logged exactly one coordinator record, so the
	// recovered bank must hold the same conserved total — a torn replay
	// (half a transfer) would break it.
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := wal.Recover(walDir)
	if err != nil {
		t.Fatal(err)
	}
	engine2, err := db.New(db.OCCOrdo, schema, ordo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(engine2, recs); err != nil {
		t.Fatal(err)
	}
	sess := engine2.NewSession()
	var recovered uint64
	err = db.RunWithRetry(sess, 3, func(tx db.Tx) error {
		recovered = 0
		for k := uint64(0); k < xsWriters*xsAccounts; k++ {
			vals, err := tx.Read(0, k)
			if err != nil {
				return err
			}
			recovered += vals[0]
		}
		return nil
	})
	if err != nil {
		t.Fatalf("reading recovered bank: %v", err)
	}
	if want := uint64(xsWriters * xsAccounts * xsBalance); recovered != want {
		t.Fatalf("recovered total %d, want %d — recovery tore a transfer", recovered, want)
	}
}

// xsWriter moves money between its own disjoint account range with atomic
// two-PUT TXNs. Being each account's only writer, its local balance cache is
// authoritative whenever its last TXN's outcome is known; after a connection
// death mid-TXN the outcome is unknown, so it resyncs the cache from the
// server before continuing. Returns the final cache for the drained check.
func xsWriter(w int, faultAddr, cleanAddr string) ([]uint64, error) {
	base := uint64(w * xsAccounts)
	bal := make([]uint64, xsAccounts)
	for i := range bal {
		bal[i] = xsBalance
	}
	rng := uint64(w)*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}

	resync := func() error {
		nc, err := net.Dial("tcp", cleanAddr)
		if err != nil {
			return err
		}
		defer nc.Close()
		c := wire.NewConn(nc)
		ops := make([]wire.Request, xsAccounts)
		for i := range ops {
			ops[i] = wire.Request{Op: wire.OpGet, Key: base + uint64(i)}
		}
		for {
			nc.SetReadDeadline(time.Now().Add(xsHang))
			resp, err := c.Do(&wire.Request{Op: wire.OpTxn, Ops: ops})
			if err != nil {
				return err
			}
			switch resp.Status {
			case wire.StatusOK:
				for i, sub := range resp.Batch {
					if sub.Status != wire.StatusOK || len(sub.Row) != 1 {
						return fmt.Errorf("resync key %d: %+v", base+uint64(i), sub)
					}
					bal[i] = sub.Row[0]
				}
				return nil
			case wire.StatusNotYet, wire.StatusConflict, wire.StatusBusy:
				continue
			default:
				return fmt.Errorf("resync answered %v", resp.Status)
			}
		}
	}

	done := 0
	var nc net.Conn
	var c *wire.Conn
	defer func() {
		if nc != nil {
			nc.Close()
		}
	}()
	for done < xsTransfers {
		if c == nil {
			var err error
			nc, err = net.Dial("tcp", faultAddr)
			if err != nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			c = wire.NewConn(nc)
		}
		a, b := int(next()%xsAccounts), int(next()%xsAccounts)
		if a == b || bal[a] < 10 {
			continue
		}
		amt := next()%10 + 1
		req := wire.Request{Op: wire.OpTxn, Ops: []wire.Request{
			{Op: wire.OpPut, Key: base + uint64(a), Vals: []uint64{bal[a] - amt}},
			{Op: wire.OpPut, Key: base + uint64(b), Vals: []uint64{bal[b] + amt}},
		}}
		nc.SetReadDeadline(time.Now().Add(xsHang))
		resp, err := c.Do(&req)
		if err != nil {
			// Connection died with a TXN possibly in flight: its atomicity
			// is the server's problem, our cache coherence is ours.
			nc.Close()
			nc, c = nil, nil
			if rerr := resync(); rerr != nil {
				return bal, rerr
			}
			continue
		}
		switch resp.Status {
		case wire.StatusOK:
			bal[a] -= amt
			bal[b] += amt
			done++
		case wire.StatusConflict, wire.StatusBusy:
			// Not applied; cache stands.
		case wire.StatusErr:
			// Terminal stream (an injected reset chopped a frame mid-write):
			// the TXN may or may not have applied — resync like a death.
			nc.Close()
			nc, c = nil, nil
			if rerr := resync(); rerr != nil {
				return bal, rerr
			}
		default:
			return bal, fmt.Errorf("transfer answered %v", resp.Status)
		}
	}
	return bal, nil
}

// xsReader sweeps one writer's whole account range per pass with a
// cross-shard read-only TXN and asserts conservation on every OK merge — the
// torn-transfer detector. NOT_YET and CONFLICT are legitimate answers
// (retry); connection deaths reconnect.
func xsReader(r int, faultAddr string, stop *atomic.Bool, okReads *atomic.Uint64) error {
	rng := uint64(r)*0x517cc1b727220a95 + 99
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var nc net.Conn
	var c *wire.Conn
	defer func() {
		if nc != nil {
			nc.Close()
		}
	}()
	for !stop.Load() {
		if c == nil {
			var err error
			nc, err = net.Dial("tcp", faultAddr)
			if err != nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			c = wire.NewConn(nc)
		}
		w := next() % xsWriters
		ops := make([]wire.Request, xsAccounts)
		for i := range ops {
			ops[i] = wire.Request{Op: wire.OpGet, Key: w*xsAccounts + uint64(i)}
		}
		nc.SetReadDeadline(time.Now().Add(xsHang))
		resp, err := c.Do(&wire.Request{Op: wire.OpTxn, Ops: ops})
		if err != nil {
			nc.Close()
			nc, c = nil, nil
			continue
		}
		switch resp.Status {
		case wire.StatusOK:
			var sum uint64
			for i, sub := range resp.Batch {
				if sub.Status != wire.StatusOK || len(sub.Row) != 1 {
					return fmt.Errorf("sweep of writer %d key %d: %+v", w, i, sub)
				}
				sum += sub.Row[0]
			}
			if sum != xsAccounts*xsBalance {
				return fmt.Errorf("torn transfer observed: writer %d accounts sum to %d, want %d",
					w, sum, xsAccounts*xsBalance)
			}
			okReads.Add(1)
		case wire.StatusNotYet, wire.StatusConflict, wire.StatusBusy:
			// Honest refusals under uncertainty or contention.
		case wire.StatusErr:
			nc.Close()
			nc, c = nil, nil
		default:
			return fmt.Errorf("sweep answered %v", resp.Status)
		}
	}
	return nil
}
