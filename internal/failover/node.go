package failover

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"ordo/internal/db"
	"ordo/internal/repl"
	"ordo/internal/server"
	"ordo/internal/telemetry/span"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// DefaultHeartbeatTimeout is how long a follower tolerates leader silence
// (no WALBATCH or WATERMARK frame) before it starts an election. The
// leader heartbeats every repl.DefaultWatermarkEvery (100ms), so the
// default absorbs an order of magnitude of jitter.
const DefaultHeartbeatTimeout = time.Second

// Config wires a Node into one ordod process. Everything is required
// unless marked optional; Boot comes from Decide, which must have run
// before the WAL was recovered and opened.
type Config struct {
	// Index and Peers mirror the BootstrapConfig the node was decided
	// with.
	Index int
	Peers []Peer
	// Dir is the WAL directory; CursorFile the follower cursor sidecar.
	Dir        string
	CursorFile string
	// DB is the live engine (the follower apply loop's target).
	DB db.DB
	// Log and Device are the open local WAL.
	Log    *wal.Log
	Device *wal.FileDevice
	// Server is the serving core: promotion flips it writable and feeds
	// its replication-ack gate.
	Server *server.Server
	// State is the shared replication scoreboard.
	State *server.ReplState
	// Telemetry records promotion takeover durations. Optional.
	Telemetry *server.Telemetry
	// Spans is the node's distributed-tracing span ring, handed to the
	// replication Source (repl_ship spans) and Follower (repl_apply spans)
	// across every role change. Optional.
	Spans *span.Ring
	// Boundary reports the local Ordo uncertainty window. Optional.
	Boundary func() uint64
	// Boot is the regime Decide fixed for this process.
	Boot *Bootstrap
	// HeartbeatTimeout, DialTimeout, RetryEvery and RetryMax default to
	// DefaultHeartbeatTimeout, DefaultDialTimeout and the repl package's
	// reconnect defaults.
	HeartbeatTimeout time.Duration
	DialTimeout      time.Duration
	RetryEvery       time.Duration
	RetryMax         time.Duration
	// Logf receives operational messages. Optional.
	Logf func(format string, args ...any)
}

// Node is the failover supervisor for one process: it serves the
// replication listener (demuxing subscriptions and peer probes), runs the
// follower session loop with leader-death detection, and performs the
// election and in-place promotion when the leader goes silent.
type Node struct {
	cfg Config

	mu        sync.Mutex
	role      server.ReplRole
	epoch     uint64
	leaderIdx int
	src       *repl.Source   // leader side; nil while following
	fol       *repl.Follower // follower side; kept after promotion for its cursor

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	lnMu sync.Mutex
	ln   net.Listener
}

// NewNode builds the supervisor for the regime Decide fixed. It persists
// the regime sidecar and, for a leader boot, builds the replication
// Source immediately (installing it as the log's record sink before any
// serving traffic can flush).
func NewNode(cfg Config) (*Node, error) {
	switch {
	case cfg.Boot == nil:
		return nil, fmt.Errorf("failover: Config.Boot is required (run Decide first)")
	case cfg.Index < 0 || cfg.Index >= len(cfg.Peers):
		return nil, fmt.Errorf("failover: peer index %d outside peer list of %d", cfg.Index, len(cfg.Peers))
	case cfg.DB == nil || cfg.Log == nil || cfg.Device == nil || cfg.Server == nil || cfg.State == nil:
		return nil, fmt.Errorf("failover: DB, Log, Device, Server and State are all required")
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = repl.DefaultRetryEvery
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = repl.DefaultRetryMax
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &Node{
		cfg:       cfg,
		role:      cfg.Boot.Role,
		epoch:     cfg.Boot.Epoch,
		leaderIdx: cfg.Boot.LeaderIndex,
		quit:      make(chan struct{}),
	}
	n.cfg.State.SetEpoch(n.epoch)
	if n.leaderIdx >= 0 {
		n.cfg.State.SetLeaderAddr(cfg.Peers[n.leaderIdx].Client)
	}

	switch n.role {
	case server.RoleLeader:
		meta, err := ReadMeta(cfg.Dir)
		if err != nil {
			return nil, err
		}
		if meta.Role != "leader" {
			// First time leading: the regime starts at the log origin.
			meta = Meta{}
		}
		if err := WriteMeta(cfg.Dir, Meta{Role: "leader", Epoch: n.epoch, PrevInc: meta.PrevInc, PrevSeq: meta.PrevSeq}); err != nil {
			return nil, err
		}
		// A resumed regime holds the ack gate until a follower
		// re-subscribes: the probes that allowed the resume prove no NEW
		// leader answered, not that no election is completing right now.
		src, err := n.newSource(n.epoch, meta.PrevInc, meta.PrevSeq, cfg.Boot.Resumed)
		if err != nil {
			return nil, err
		}
		n.src = src
	case server.RoleFollower:
		if err := WriteMeta(cfg.Dir, Meta{Role: "follower", Epoch: n.epoch}); err != nil {
			return nil, err
		}
		fol, err := repl.NewFollower(repl.FollowerConfig{
			Addr:        cfg.Peers[maxInt(n.leaderIdx, 0)].Repl,
			DB:          cfg.DB,
			Log:         cfg.Log,
			State:       cfg.State,
			Telemetry:   cfg.Telemetry,
			StateFile:   cfg.CursorFile,
			Boundary:    cfg.Boundary,
			Epoch:       n.epoch,
			RetryEvery:  cfg.RetryEvery,
			RetryMax:    cfg.RetryMax,
			DialTimeout: cfg.DialTimeout,
			Spans:       cfg.Spans,
			Logf:        cfg.Logf,
		})
		if err != nil {
			return nil, err
		}
		n.fol = fol
	default:
		return nil, fmt.Errorf("failover: bootstrap role %v is not a cluster role", n.role)
	}
	return n, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// newSource builds this node's leader-side stream with the failover
// wiring: epoch fencing, the regime-start cursor for fenced rejoiners,
// the client-facing redirect address, and the replication-ack feed into
// the serving core.
func (n *Node) newSource(epoch, prevInc, prevSeq uint64, holdAckGate bool) (*repl.Source, error) {
	return repl.NewSource(repl.SourceConfig{
		Dir:         n.cfg.Dir,
		Log:         n.cfg.Log,
		Incarnation: n.cfg.Device.Incarnation(),
		State:       n.cfg.State,
		Boundary:    n.cfg.Boundary,
		Epoch:       epoch,
		PrevInc:     prevInc,
		PrevSeq:     prevSeq,
		Advertise:   n.cfg.Peers[n.cfg.Index].Client,
		AckAdvance:  n.cfg.Server.NoteReplAck,
		HoldAckGate: holdAckGate,
		Spans:       n.cfg.Spans,
		Logf:        n.cfg.Logf,
	})
}

// Serve accepts replication connections on ln until Close, demuxing each
// by its hello frame: SUBSCRIBE goes to the live Source (or is refused
// with a redirect while following), STATUS is answered with this node's
// current regime view. It owns ln.
func (n *Node) Serve(ln net.Listener) error {
	n.lnMu.Lock()
	select {
	case <-n.quit:
		n.lnMu.Unlock()
		ln.Close()
		return fmt.Errorf("failover: node closed")
	default:
	}
	n.ln = ln
	n.lnMu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-n.quit:
				return nil
			default:
				return err
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleConn(nc)
		}()
	}
}

func (n *Node) handleConn(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 64<<10)
	m, _, err := wire.ReadReplHello(br, nil)
	if err != nil {
		n.cfg.Logf("failover: %v: bad hello: %v", nc.RemoteAddr(), err)
		return
	}
	n.mu.Lock()
	role, epoch, src, leaderIdx := n.role, n.epoch, n.src, n.leaderIdx
	n.mu.Unlock()
	if m.Epoch > epoch {
		// The hello outranks our regime — a promotion announcement or a
		// peer that already converged on one. A leader seeing it has been
		// fenced and must stop acking writes before answering anything; a
		// follower just adopts the view so its next session retargets.
		if role == server.RoleLeader {
			n.demote(m.Epoch, n.announcedLeader(&m))
		} else {
			n.noteEpoch(m.Epoch)
			if idx := n.announcedLeader(&m); idx >= 0 {
				n.setLeader(idx)
			}
		}
		n.mu.Lock()
		role, epoch, src, leaderIdx = n.role, n.epoch, n.src, n.leaderIdx
		n.mu.Unlock()
	}
	switch m.Kind {
	case wire.ReplStatus:
		n.writeMsg(nc, epoch, n.status())
	case wire.ReplSubscribe:
		if role == server.RoleLeader && src != nil {
			src.ServeSubscriber(nc, br, &m)
			return
		}
		// Not the leader: one REJECT carrying where we believe writes go.
		rej := &wire.ReplMsg{Kind: wire.ReplReject, Role: uint64(role)}
		if leaderIdx >= 0 {
			rej.Addr = n.cfg.Peers[leaderIdx].Client
		}
		n.writeMsg(nc, epoch, rej)
	default:
		n.cfg.Logf("failover: %v: unexpected hello %v", nc.RemoteAddr(), m.Kind)
	}
}

// status builds this node's STATUS answer: the Source's stream view when
// leading, the follower cursor otherwise. Probes use Inc/Seq as the
// election position, so a follower reports exactly what it has applied.
func (n *Node) status() *wire.ReplMsg {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == server.RoleLeader && n.src != nil {
		return n.src.Status()
	}
	m := &wire.ReplMsg{
		Kind: wire.ReplStatus,
		Role: uint64(n.role),
		Addr: n.cfg.Peers[n.cfg.Index].Client,
	}
	if n.fol != nil {
		pos := n.fol.Position()
		m.Inc, m.Seq = pos.Inc, pos.Seq
	}
	return m
}

// writeMsg sends one epoch-stamped frame; errors only end the probe
// connection, which is already closing.
func (n *Node) writeMsg(nc net.Conn, epoch uint64, m *wire.ReplMsg) {
	m.Epoch = epoch
	p, err := wire.AppendReplMsg(nil, m)
	if err != nil {
		return
	}
	_ = wire.WriteReplFrame(nc, p)
}

// Run drives the supervision loop until ctx is done. A follower runs
// sessions with leader-death detection and may promote itself; a leader
// (boot-time or promoted) runs the self-probe loop, demoting itself in
// place if it ever observes a higher epoch — a leader that never looked
// again after boot could keep serving a regime the cluster has already
// fenced. A demoted node parks read-only until the operator restarts it
// (the restart runs the fenced-rejoin truncation in Decide).
func (n *Node) Run(ctx context.Context) error {
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	if role == server.RoleFollower {
		n.followLoop(ctx)
	}
	n.mu.Lock()
	role = n.role
	n.mu.Unlock()
	if role == server.RoleLeader {
		n.leaderLoop(ctx)
	}
	<-ctx.Done()
	return ctx.Err()
}

// leaderLoop is the active leader's self-supervision: probe the peers
// every heartbeat interval and demote in place on any view of a higher
// epoch. Returns when the node is no longer the leader or ctx is done.
func (n *Node) leaderLoop(ctx context.Context) {
	t := time.NewTicker(n.cfg.HeartbeatTimeout)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-n.quit:
			return
		case <-t.C:
		}
		n.mu.Lock()
		role, epoch := n.role, n.epoch
		n.mu.Unlock()
		if role != server.RoleLeader {
			return
		}
		for i, p := range n.cfg.Peers {
			if i == n.cfg.Index || ctx.Err() != nil {
				continue
			}
			m, err := Probe(p.Repl, n.cfg.DialTimeout)
			if err != nil {
				continue
			}
			if m.Epoch > epoch {
				idx := -1
				if server.ReplRole(m.Role) == server.RoleLeader {
					idx = i
				}
				n.demote(m.Epoch, idx)
				return
			}
		}
	}
}

// demote fences this node out of leadership in place after it observed a
// higher epoch: stop acking writes FIRST (read-only), then flip the role
// and close the Source so every subscriber re-resolves the regime. The
// local WAL is left untouched — its tail may hold an unshipped suffix in
// the old stream's coordinates, and truncating requires a closed log — so
// the sidecar keeps Role "leader" and the node serves reads and NOT_LEADER
// redirects until a restart runs the fenced-rejoin path in Decide.
func (n *Node) demote(higher uint64, leaderIdx int) {
	n.cfg.Server.SetReadOnly(true)
	n.mu.Lock()
	if n.role != server.RoleLeader {
		n.mu.Unlock()
		return
	}
	n.role = server.RoleFollower
	if higher > n.epoch {
		n.epoch = higher
	}
	n.leaderIdx = leaderIdx
	src := n.src
	n.src = nil
	n.mu.Unlock()

	st := n.cfg.State
	st.SetRole(server.RoleFollower)
	st.SetEpoch(higher)
	if leaderIdx >= 0 {
		st.SetLeaderAddr(n.cfg.Peers[leaderIdx].Client)
	} else {
		st.SetLeaderAddr("")
	}
	st.NoteFencing()
	if src != nil {
		src.Close()
	}
	n.cfg.Logf("failover: demoted by epoch %d regime; serving reads only — restart this node to rejoin as a follower", higher)
}

// followLoop runs follower sessions against the believed leader,
// reconnecting with capped exponential backoff, converging on fencing
// rejections, and — when the leader has been silent past the heartbeat
// timeout — holding an election. It returns once this node promotes.
func (n *Node) followLoop(ctx context.Context) {
	delay := n.cfg.RetryEvery
	for ctx.Err() == nil {
		n.mu.Lock()
		fol := n.fol
		target := n.cfg.Peers[maxInt(n.leaderIdx, 0)].Repl
		n.mu.Unlock()

		fol.Retarget(target)
		began := time.Now()
		err := fol.Session(ctx)
		if ctx.Err() != nil {
			return
		}
		productive := time.Since(began) > 2*n.cfg.RetryEvery

		var fenced *repl.Fenced
		if errors.As(err, &fenced) {
			if fenced.Epoch >= fol.Epoch() {
				// A rejection from the current or a newer regime: adopt it
				// (Converge resets the cursor for the new leader's
				// coordinate space) and chase its advertised address.
				if cerr := fol.Converge(fenced); cerr != nil {
					n.cfg.Logf("failover: converge: %v", cerr)
				}
				n.noteEpoch(fol.Epoch())
				if idx := n.peerByClient(fenced.Addr); idx >= 0 {
					n.setLeader(idx)
				}
				productive = true
			} else {
				// A stale regime refused us. Its advertised leader is, at
				// best, history — do NOT repoint at it, and do NOT treat the
				// refusal as progress: let the heartbeat timeout run out and
				// drive an election past the zombie.
				n.cfg.Logf("failover: ignoring rejection from stale epoch %d (ours %d)", fenced.Epoch, fol.Epoch())
			}
		}

		if n.cfg.State.ContactAge() > n.cfg.HeartbeatTimeout {
			if n.election(ctx) {
				return // promoted; Run parks on ctx
			}
		}

		if productive {
			delay = n.cfg.RetryEvery
		} else if delay *= 2; delay > n.cfg.RetryMax {
			delay = n.cfg.RetryMax
		}
		jittered := delay*3/4 + time.Duration(rand.Int63n(int64(delay)/2))
		select {
		case <-ctx.Done():
			return
		case <-time.After(jittered):
		}
	}
}

// election probes every peer and decides whether this node should take
// over: the winner is the greatest (epoch, incarnation, seq) position
// among live candidates, ties broken by the lowest peer index. Finding
// any live leader at or above our epoch cancels the election — the
// believed-leader pointer is retargeted instead. Returns true when this
// node promoted itself.
func (n *Node) election(ctx context.Context) bool {
	n.mu.Lock()
	fol := n.fol
	n.mu.Unlock()
	pos := fol.Position()
	myEpoch := fol.Epoch()

	bestIdx, bestEpoch, bestInc, bestSeq := n.cfg.Index, myEpoch, pos.Inc, pos.Seq
	maxEpoch := myEpoch
	for i, p := range n.cfg.Peers {
		if i == n.cfg.Index || ctx.Err() != nil {
			continue
		}
		m, err := Probe(p.Repl, n.cfg.DialTimeout)
		if err != nil {
			continue
		}
		if m.Epoch > maxEpoch {
			maxEpoch = m.Epoch
		}
		if server.ReplRole(m.Role) == server.RoleLeader && m.Epoch >= myEpoch {
			n.cfg.Logf("failover: election found live leader %s at epoch %d", p.Repl, m.Epoch)
			n.setLeader(i)
			return false
		}
		if beats(m.Epoch, m.Inc, m.Seq, i, bestEpoch, bestInc, bestSeq, bestIdx) {
			bestIdx, bestEpoch, bestInc, bestSeq = i, m.Epoch, m.Inc, m.Seq
		}
	}
	if ctx.Err() != nil {
		return false
	}
	if bestIdx != n.cfg.Index {
		n.cfg.Logf("failover: deferring takeover to peer %d at (epoch %d, pos %d/%d)",
			bestIdx, bestEpoch, bestInc, bestSeq)
		return false
	}
	return n.promote(maxEpoch)
}

// beats reports whether candidate a out-positions candidate b: more
// caught-up wins ((epoch, inc, seq) lexicographic), lower priority index
// breaks exact ties. Every live candidate evaluates the same inputs, so
// concurrent elections pick the same winner.
func beats(aE, aI, aS uint64, aIdx int, bE, bI, bS uint64, bIdx int) bool {
	switch {
	case aE != bE:
		return aE > bE
	case aI != bI:
		return aI > bI
	case aS != bS:
		return aS > bS
	}
	return aIdx < bIdx
}

// promote performs the in-place takeover: bump the fencing epoch in the
// WAL segment headers (the promotion barrier — every record this regime
// writes is under the new epoch), persist the regime sidecar with the
// takeover cursor, start streaming, and only then open the serving core
// for writes. Any failure leaves the node a follower; the next detection
// round retries.
func (n *Node) promote(maxEpochSeen uint64) bool {
	deadFor := n.cfg.State.ContactAge()
	start := time.Now()
	pos := n.fol.Position()
	newEpoch := maxEpochSeen + 1
	n.cfg.Logf("failover: promoting to leader at epoch %d from cursor (%d, %d); leader silent %v",
		newEpoch, pos.Inc, pos.Seq, deadFor.Round(time.Millisecond))

	if err := n.cfg.Device.SetEpoch(newEpoch); err != nil {
		n.cfg.Logf("failover: promotion aborted: wal epoch: %v", err)
		return false
	}
	if err := WriteMeta(n.cfg.Dir, Meta{Role: "leader", Epoch: newEpoch, PrevInc: pos.Inc, PrevSeq: pos.Seq}); err != nil {
		n.cfg.Logf("failover: promotion aborted: sidecar: %v", err)
		return false
	}
	// No gate hold: promotion happens while the cluster is live, and the
	// election just proved no higher regime exists among reachable peers.
	src, err := n.newSource(newEpoch, pos.Inc, pos.Seq, false)
	if err != nil {
		n.cfg.Logf("failover: promotion aborted: source: %v", err)
		return false
	}

	n.mu.Lock()
	n.role = server.RoleLeader
	n.epoch = newEpoch
	n.leaderIdx = n.cfg.Index
	n.src = src
	n.mu.Unlock()

	st := n.cfg.State
	st.SetEpoch(newEpoch)
	st.SetRole(server.RoleLeader)
	st.SetLeaderAddr(n.cfg.Peers[n.cfg.Index].Client)
	st.SetLag(0)
	n.cfg.Server.SetReadOnly(false)
	st.NotePromotion()
	if t := n.cfg.Telemetry; t != nil {
		t.ObservePromotion(time.Since(start))
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.announceRegime(newEpoch)
	}()
	n.cfg.Logf("failover: serving writes at epoch %d (takeover %v)", newEpoch, time.Since(start).Round(time.Millisecond))
	return true
}

// noteEpoch raises the node's view of the cluster epoch.
func (n *Node) noteEpoch(e uint64) {
	n.mu.Lock()
	if e > n.epoch {
		n.epoch = e
	}
	n.mu.Unlock()
	n.cfg.State.SetEpoch(e)
}

// setLeader repoints the believed leader and the client redirect target.
func (n *Node) setLeader(idx int) {
	n.mu.Lock()
	n.leaderIdx = idx
	n.mu.Unlock()
	n.cfg.State.SetLeaderAddr(n.cfg.Peers[idx].Client)
}

// announcedLeader resolves a hello to a leader peer index: the sender must
// claim the leader role and advertise a known client address. -1 otherwise.
func (n *Node) announcedLeader(m *wire.ReplMsg) int {
	if server.ReplRole(m.Role) != server.RoleLeader {
		return -1
	}
	return n.peerByClient(m.Addr)
}

// announceRegime pushes one best-effort STATUS exchange at every peer so
// they learn the new epoch now rather than at their next probe or stream
// frame. The critical consumer is a stale ex-leader that resumed while
// this election ran: the announcement demotes it before its gate waiver
// can ack a write the new regime never saw.
func (n *Node) announceRegime(epoch uint64) {
	hello := wire.ReplMsg{
		Kind:  wire.ReplStatus,
		Role:  uint64(server.RoleLeader),
		Epoch: epoch,
		Addr:  n.cfg.Peers[n.cfg.Index].Client,
	}
	for i, p := range n.cfg.Peers {
		if i == n.cfg.Index {
			continue
		}
		if _, err := Announce(p.Repl, &hello, n.cfg.DialTimeout); err != nil {
			n.cfg.Logf("failover: announcing epoch %d to %s: %v", epoch, p.Repl, err)
		}
	}
}

// peerByClient maps a client-facing address back to a peer index, -1 when
// unknown.
func (n *Node) peerByClient(addr string) int {
	if addr == "" {
		return -1
	}
	for i, p := range n.cfg.Peers {
		if p.Client == addr {
			return i
		}
	}
	return -1
}

// Epoch returns the node's current fencing epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Role returns the node's current role.
func (n *Node) Role() server.ReplRole {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Close stops the listener and the leader-side stream and waits for the
// connection handlers. The follower loop stops via its context.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.quit)
		n.lnMu.Lock()
		if n.ln != nil {
			n.ln.Close()
		}
		n.lnMu.Unlock()
	})
	n.mu.Lock()
	src := n.src
	n.mu.Unlock()
	if src != nil {
		src.Close()
	}
	n.wg.Wait()
}
