package failover

import (
	"bufio"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ordo/internal/server"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers(" 127.0.0.1:7611@127.0.0.1:7601 ,127.0.0.1:7612@127.0.0.1:7602,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("got %d peers, want 2", len(peers))
	}
	if peers[0].Repl != "127.0.0.1:7611" || peers[0].Client != "127.0.0.1:7601" {
		t.Fatalf("peer 0 = %+v", peers[0])
	}
	// An IPv6 replication address keeps its colons: the LAST @ splits.
	peers, err = ParsePeers("[::1]:7611@[::1]:7601")
	if err != nil {
		t.Fatal(err)
	}
	if peers[0].Repl != "[::1]:7611" || peers[0].Client != "[::1]:7601" {
		t.Fatalf("ipv6 peer = %+v", peers[0])
	}
	for _, bad := range []string{"", ",,", "noseparator", "@client", "repl@"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted malformed input", bad)
		}
	}
}

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Missing file is a zero Meta, not an error.
	m, err := ReadMeta(dir)
	if err != nil || m != (Meta{}) {
		t.Fatalf("missing sidecar: %+v, %v", m, err)
	}
	want := Meta{Role: "leader", Epoch: 3, PrevInc: 2, PrevSeq: 4711}
	if err := WriteMeta(dir, want); err != nil {
		t.Fatal(err)
	}
	m, err = ReadMeta(dir)
	if err != nil || m != want {
		t.Fatalf("round trip: %+v, %v; want %+v", m, err, want)
	}
	// Corruption is an error, not a guess.
	if err := os.WriteFile(MetaPath(dir), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeta(dir); err == nil {
		t.Fatal("corrupt sidecar read back without error")
	}
}

// decideOffline runs Decide against peers that are all unreachable (ports
// from the reserved TEST-NET range never answer on loopback in time). The
// resume grace is kept short so ex-leader tests stay fast.
func decideOffline(t *testing.T, dir, cursorFile string, index int) *Bootstrap {
	t.Helper()
	b, err := Decide(BootstrapConfig{
		Dir:   dir,
		Index: index,
		Peers: []Peer{
			{Repl: "127.0.0.1:1", Client: "127.0.0.1:2"},
			{Repl: "127.0.0.1:3", Client: "127.0.0.1:4"},
			{Repl: "127.0.0.1:5", Client: "127.0.0.1:6"},
		},
		CursorFile:  cursorFile,
		DialTimeout: 50 * time.Millisecond,
		ResumeGrace: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fakePeer is a minimal replication listener: every connection gets its
// hello read and one configurable STATUS answer back.
type fakePeer struct {
	ln  net.Listener
	mu  sync.Mutex
	msg wire.ReplMsg
}

func startFakePeer(t *testing.T, initial wire.ReplMsg) *fakePeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &fakePeer{ln: ln, msg: initial}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				if _, _, err := wire.ReadReplHello(bufio.NewReaderSize(nc, 4<<10), nil); err != nil {
					return
				}
				p.mu.Lock()
				m := p.msg
				p.mu.Unlock()
				buf, err := wire.AppendReplMsg(nil, &m)
				if err != nil {
					return
				}
				_ = wire.WriteReplFrame(nc, buf)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *fakePeer) set(m wire.ReplMsg) {
	p.mu.Lock()
	p.msg = m
	p.mu.Unlock()
}

func (p *fakePeer) addr() string { return p.ln.Addr().String() }

func TestDecideColdCluster(t *testing.T) {
	// Nobody answers, no history: index 0 leads at a fenced epoch, everyone
	// else follows the priority head.
	b := decideOffline(t, t.TempDir(), "", 0)
	if b.Role != server.RoleLeader || b.Epoch != 1 || b.LeaderIndex != 0 {
		t.Fatalf("cold index 0: %+v", b)
	}
	b = decideOffline(t, t.TempDir(), "", 2)
	if b.Role != server.RoleFollower || b.LeaderIndex != 0 {
		t.Fatalf("cold index 2: %+v", b)
	}
}

func TestDecideLeaderResume(t *testing.T) {
	// A restarting ex-leader with no competing regime resumes its own.
	dir := t.TempDir()
	if err := WriteMeta(dir, Meta{Role: "leader", Epoch: 5, PrevInc: 1, PrevSeq: 9}); err != nil {
		t.Fatal(err)
	}
	b := decideOffline(t, dir, "", 1)
	if b.Role != server.RoleLeader || b.Epoch != 5 || b.LeaderIndex != 1 {
		t.Fatalf("leader resume: %+v", b)
	}
	// A multi-node resume cannot prove no concurrent election happened, so
	// it must boot with the ack gate held until a follower re-subscribes.
	if !b.Resumed {
		t.Fatal("multi-node leader resume did not set Resumed")
	}
}

func TestDecideResumeJoinsConcurrentElection(t *testing.T) {
	// A crashed leader restarts while the election its death triggered is
	// still in flight: the peer answers as a follower at the old epoch
	// first, then finishes promoting mid-grace. The re-probe loop must see
	// the new regime and join it instead of resuming the old one.
	dir := t.TempDir()
	if err := WriteMeta(dir, Meta{Role: "leader", Epoch: 5, PrevInc: 1, PrevSeq: 9}); err != nil {
		t.Fatal(err)
	}
	peer := startFakePeer(t, wire.ReplMsg{Kind: wire.ReplStatus, Role: uint64(server.RoleFollower), Epoch: 5})
	flip := time.AfterFunc(150*time.Millisecond, func() {
		peer.set(wire.ReplMsg{Kind: wire.ReplStatus, Role: uint64(server.RoleLeader), Epoch: 6,
			PrevInc: 1, PrevSeq: 9, Addr: "127.0.0.1:7602"})
	})
	defer flip.Stop()
	b, err := Decide(BootstrapConfig{
		Dir:   dir,
		Index: 0,
		Peers: []Peer{
			{Repl: "127.0.0.1:1", Client: "127.0.0.1:2"}, // self, never probed
			{Repl: peer.addr(), Client: "127.0.0.1:7602"},
			{Repl: "127.0.0.1:5", Client: "127.0.0.1:6"},
		},
		DialTimeout: 50 * time.Millisecond,
		ResumeGrace: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Role != server.RoleFollower || b.Epoch != 6 || b.LeaderIndex != 1 {
		t.Fatalf("concurrent election join: %+v", b)
	}
}

func TestDecideResumeRefusesHigherEpoch(t *testing.T) {
	// A peer proves a newer regime exists (epoch 9 > our 5) but its leader
	// never answers. Resuming would fork the cluster; following blindly has
	// no takeover cursor to truncate to. Decide must refuse to boot.
	dir := t.TempDir()
	if err := WriteMeta(dir, Meta{Role: "leader", Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	peer := startFakePeer(t, wire.ReplMsg{Kind: wire.ReplStatus, Role: uint64(server.RoleFollower), Epoch: 9})
	_, err := Decide(BootstrapConfig{
		Dir:   dir,
		Index: 0,
		Peers: []Peer{
			{Repl: "127.0.0.1:1", Client: "127.0.0.1:2"},
			{Repl: peer.addr(), Client: "127.0.0.1:7602"},
		},
		DialTimeout: 50 * time.Millisecond,
		ResumeGrace: 50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("Decide resumed under a higher-epoch regime with no reachable leader")
	}
}

func TestDecideColdClusterFencesHistory(t *testing.T) {
	// Cold takeover over a log with regime history: the new leader must
	// bump PAST the on-disk epoch, never reuse it.
	dir := t.TempDir()
	dev, err := wal.OpenFile(dir, wal.FileConfig{Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	l := wal.New(dev, nil)
	l.NewHandle().AppendAt(1, []byte("x"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	dev.Close()
	b := decideOffline(t, dir, "", 0)
	if b.Role != server.RoleLeader || b.Epoch != 5 {
		t.Fatalf("cold takeover over epoch-4 history: %+v, want leader at epoch 5", b)
	}
}

func TestDecideEpochFromAllSources(t *testing.T) {
	// The boot epoch is the max over sidecar, WAL segment headers and the
	// follower cursor, so no regime marker can regress it.
	dir := t.TempDir()
	dev, err := wal.OpenFile(dir, wal.FileConfig{Epoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	l := wal.New(dev, nil)
	l.NewHandle().AppendAt(1, []byte("x"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	dev.Close()
	if err := WriteMeta(dir, Meta{Role: "follower", Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	cursorFile := filepath.Join(t.TempDir(), "cursor.json")
	if err := os.WriteFile(cursorFile, []byte(`{"inc":1,"seq":1,"epoch":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	b := decideOffline(t, dir, cursorFile, 2)
	if b.Epoch != 7 {
		t.Fatalf("epoch = %d, want 7 (WAL header wins the max)", b.Epoch)
	}
	if b.Role != server.RoleFollower {
		t.Fatalf("role = %v, want follower", b.Role)
	}
}
