package failover

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ordo/internal/server"
	"ordo/internal/wal"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers(" 127.0.0.1:7611@127.0.0.1:7601 ,127.0.0.1:7612@127.0.0.1:7602,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("got %d peers, want 2", len(peers))
	}
	if peers[0].Repl != "127.0.0.1:7611" || peers[0].Client != "127.0.0.1:7601" {
		t.Fatalf("peer 0 = %+v", peers[0])
	}
	// An IPv6 replication address keeps its colons: the LAST @ splits.
	peers, err = ParsePeers("[::1]:7611@[::1]:7601")
	if err != nil {
		t.Fatal(err)
	}
	if peers[0].Repl != "[::1]:7611" || peers[0].Client != "[::1]:7601" {
		t.Fatalf("ipv6 peer = %+v", peers[0])
	}
	for _, bad := range []string{"", ",,", "noseparator", "@client", "repl@"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted malformed input", bad)
		}
	}
}

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Missing file is a zero Meta, not an error.
	m, err := ReadMeta(dir)
	if err != nil || m != (Meta{}) {
		t.Fatalf("missing sidecar: %+v, %v", m, err)
	}
	want := Meta{Role: "leader", Epoch: 3, PrevInc: 2, PrevSeq: 4711}
	if err := WriteMeta(dir, want); err != nil {
		t.Fatal(err)
	}
	m, err = ReadMeta(dir)
	if err != nil || m != want {
		t.Fatalf("round trip: %+v, %v; want %+v", m, err, want)
	}
	// Corruption is an error, not a guess.
	if err := os.WriteFile(MetaPath(dir), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeta(dir); err == nil {
		t.Fatal("corrupt sidecar read back without error")
	}
}

// decideOffline runs Decide against peers that are all unreachable (ports
// from the reserved TEST-NET range never answer on loopback in time).
func decideOffline(t *testing.T, dir, cursorFile string, index int) *Bootstrap {
	t.Helper()
	b, err := Decide(BootstrapConfig{
		Dir:   dir,
		Index: index,
		Peers: []Peer{
			{Repl: "127.0.0.1:1", Client: "127.0.0.1:2"},
			{Repl: "127.0.0.1:3", Client: "127.0.0.1:4"},
			{Repl: "127.0.0.1:5", Client: "127.0.0.1:6"},
		},
		CursorFile:  cursorFile,
		DialTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDecideColdCluster(t *testing.T) {
	// Nobody answers, no history: index 0 leads at a fenced epoch, everyone
	// else follows the priority head.
	b := decideOffline(t, t.TempDir(), "", 0)
	if b.Role != server.RoleLeader || b.Epoch != 1 || b.LeaderIndex != 0 {
		t.Fatalf("cold index 0: %+v", b)
	}
	b = decideOffline(t, t.TempDir(), "", 2)
	if b.Role != server.RoleFollower || b.LeaderIndex != 0 {
		t.Fatalf("cold index 2: %+v", b)
	}
}

func TestDecideLeaderResume(t *testing.T) {
	// A restarting ex-leader with no competing regime resumes its own.
	dir := t.TempDir()
	if err := WriteMeta(dir, Meta{Role: "leader", Epoch: 5, PrevInc: 1, PrevSeq: 9}); err != nil {
		t.Fatal(err)
	}
	b := decideOffline(t, dir, "", 1)
	if b.Role != server.RoleLeader || b.Epoch != 5 || b.LeaderIndex != 1 {
		t.Fatalf("leader resume: %+v", b)
	}
}

func TestDecideEpochFromAllSources(t *testing.T) {
	// The boot epoch is the max over sidecar, WAL segment headers and the
	// follower cursor, so no regime marker can regress it.
	dir := t.TempDir()
	dev, err := wal.OpenFile(dir, wal.FileConfig{Epoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	l := wal.New(dev, nil)
	l.NewHandle().AppendAt(1, []byte("x"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	dev.Close()
	if err := WriteMeta(dir, Meta{Role: "follower", Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	cursorFile := filepath.Join(t.TempDir(), "cursor.json")
	if err := os.WriteFile(cursorFile, []byte(`{"inc":1,"seq":1,"epoch":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	b := decideOffline(t, dir, cursorFile, 2)
	if b.Epoch != 7 {
		t.Fatalf("epoch = %d, want 7 (WAL header wins the max)", b.Epoch)
	}
	if b.Role != server.RoleFollower {
		t.Fatalf("role = %v, want follower", b.Role)
	}
}
