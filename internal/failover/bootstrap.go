package failover

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ordo/internal/server"
	"ordo/internal/wal"
)

// DefaultDialTimeout bounds each peer probe and election dial.
const DefaultDialTimeout = time.Second

// Bootstrap is a node's starting regime, decided before WAL recovery so
// a fenced rejoin can truncate the log while nothing has it open.
type Bootstrap struct {
	// Role this node boots into.
	Role server.ReplRole
	// Epoch the node serves under (and opens its WAL device with).
	Epoch uint64
	// LeaderIndex is the believed leader's peer index (this node's own
	// index when Role is leader), -1 when no leader is known yet.
	LeaderIndex int
	// Truncated is how many unshipped records a fenced rejoin dropped.
	Truncated int
	// Resumed marks a leader boot that resumed a prior regime in a
	// multi-node cluster. A resumed leader cannot prove its followers did
	// not promote a successor moments after the probes (crash-stop gives
	// no negative evidence), so the node holds the replication-ack
	// gate's no-subscriber waiver until the first follower re-subscribes.
	Resumed bool
}

// BootstrapConfig parameterizes Decide.
type BootstrapConfig struct {
	// Dir is the WAL directory (sidecars live next to the segments).
	Dir string
	// Index is this node's position in Peers.
	Index int
	// Peers is the full cluster map, including this node.
	Peers []Peer
	// CursorFile is the follower stream-cursor sidecar path.
	CursorFile string
	// DialTimeout bounds each peer probe; ≤ 0 means DefaultDialTimeout.
	DialTimeout time.Duration
	// HeartbeatTimeout is the cluster's leader-silence bound, used to
	// derive the default resume grace; ≤ 0 means DefaultHeartbeatTimeout.
	HeartbeatTimeout time.Duration
	// ResumeGrace is how long an ex-leader keeps re-probing for a
	// concurrent election before resuming its own regime; ≤ 0 derives
	// HeartbeatTimeout + 2×DialTimeout — long enough that a follower
	// whose election was triggered by our death has promoted and answers
	// probes as the new leader.
	ResumeGrace time.Duration
	// Logf receives operational messages. Optional.
	Logf func(format string, args ...any)
}

// Decide probes the cluster and fixes this node's starting regime. It
// MUST run before wal.Recover/OpenFile: the fenced-rejoin path rewrites
// the log in place.
//
// The decision table:
//
//   - A live leader answered a probe: join it as a follower. If its epoch
//     is newer than anything recorded locally AND this node's sidecar says
//     it led the old regime, the local log tail past the new leader's
//     takeover cursor was never shipped — truncate it first, so recovery
//     replays exactly the prefix the new regime inherited.
//   - No live leader, but the sidecar says this node was the leader:
//     re-probe for ResumeGrace first — a crashed leader restarting fast can
//     race the very election its death triggered, and resuming blindly at
//     the old epoch while a follower promotes at epoch+1 forks the cluster
//     into two acking leaders. Only when the grace expires with no live
//     leader and no peer reporting a higher epoch does the node resume its
//     regime (followers re-subscribe by cursor). A peer at a higher epoch
//     with its leader unreachable is a hard refusal: a newer regime exists,
//     and booting without its takeover cursor cannot be done safely.
//   - No live leader and no leader history: priority index 0 takes the
//     cold cluster at a bumped epoch (fencing any regime history found on
//     disk); everyone else follows it.
//
// A follower that finds its cursor AHEAD of a newer regime's takeover
// point would mean an acknowledged write existed only on this node while
// it was dead — a double failure outside the supported model. Decide
// refuses to guess and resets the node to an empty log (it re-backfills
// everything from the new leader), logging loudly.
func Decide(cfg BootstrapConfig) (*Bootstrap, error) {
	if cfg.Index < 0 || cfg.Index >= len(cfg.Peers) {
		return nil, fmt.Errorf("failover: peer index %d outside peer list of %d", cfg.Index, len(cfg.Peers))
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	meta, err := ReadMeta(cfg.Dir)
	if err != nil {
		return nil, err
	}
	epoch := meta.Epoch
	if diskEpoch, err := wal.MaxEpoch(cfg.Dir); err == nil && diskEpoch > epoch {
		epoch = diskEpoch
	}
	cursor := readCursor(cfg.CursorFile)
	if cursor.Epoch > epoch {
		epoch = cursor.Epoch
	}

	// One probe round over the other peers; the newest live leader wins.
	round := probeRound(&cfg)

	// An ex-leader restarting with no live leader in sight may be racing
	// the election its own death triggered: the followers noticed the
	// silence, but their winner has not finished promoting yet. Resuming
	// now would put two acking leaders on the wire at different epochs.
	// Keep re-probing for the grace window; a live leader found on any
	// round is joined below exactly like a first-round find.
	if round.leaderIdx < 0 && meta.Role == "leader" && len(cfg.Peers) > 1 {
		grace := cfg.ResumeGrace
		if grace <= 0 {
			hb := cfg.HeartbeatTimeout
			if hb <= 0 {
				hb = DefaultHeartbeatTimeout
			}
			grace = hb + 2*cfg.DialTimeout
		}
		step := cfg.DialTimeout
		if step > 100*time.Millisecond {
			step = 100 * time.Millisecond
		}
		logf("failover: ex-leader restart: re-probing for a concurrent election for %v before resuming epoch %d", grace, epoch)
		start := time.Now()
		deadline := start.Add(grace)
		// Seeing a higher epoch proves a newer regime exists even when its
		// leader has not answered yet; wait longer for it to appear before
		// giving up (resuming would be the data-loss fork, and following
		// blindly — without the new regime's takeover cursor to truncate
		// to — is not safe either).
		extended := start.Add(5 * grace)
		for round.leaderIdx < 0 {
			now := time.Now()
			if now.After(deadline) && (round.maxEpoch <= epoch || now.After(extended)) {
				break
			}
			time.Sleep(step)
			next := probeRound(&cfg)
			if next.maxEpoch < round.maxEpoch {
				next.maxEpoch = round.maxEpoch
			}
			round = next
		}
		if round.leaderIdx < 0 && round.maxEpoch > epoch {
			return nil, fmt.Errorf("failover: a peer reports epoch %d past our regime %d but its leader is unreachable; refusing to resume (manual intervention or a reachable leader required)", round.maxEpoch, epoch)
		}
	}

	b := &Bootstrap{Epoch: epoch, LeaderIndex: round.leaderIdx}
	leaderEpoch, leaderPrevInc, leaderPrevSeq := round.leaderEpoch, round.leaderPrevInc, round.leaderPrevSeq
	switch {
	case round.leaderIdx >= 0:
		b.Role = server.RoleFollower
		if leaderEpoch > epoch {
			switch meta.Role {
			case "leader":
				// Fenced ex-leader: our log's coordinates ARE the old
				// stream's, and the new leader acknowledged through
				// (PrevInc, PrevSeq). Everything past it is the unshipped
				// suffix — no follower ack, so no client ack under the
				// gate, depended on it.
				dropped, err := wal.TruncateAfter(cfg.Dir, leaderPrevInc, leaderPrevSeq)
				if err != nil {
					return nil, fmt.Errorf("failover: truncating fenced log: %w", err)
				}
				b.Truncated = dropped
				logf("failover: fenced by epoch %d regime: truncated %d unshipped records after (%d, %d)",
					leaderEpoch, dropped, leaderPrevInc, leaderPrevSeq)
			default:
				// Ex-follower (or fresh node): its log is a local
				// transcription in its own coordinates; cursor position
				// decides whether it is a safe prefix.
				if cursorBeyond(cursor, leaderPrevInc, leaderPrevSeq) {
					logf("failover: WARNING: cursor (%d, %d) runs past epoch %d regime start (%d, %d) — double failure? resetting local log to re-backfill",
						cursor.Inc, cursor.Seq, leaderEpoch, leaderPrevInc, leaderPrevSeq)
					if err := resetDir(cfg.Dir); err != nil {
						return nil, err
					}
					// The cursor may live outside the WAL dir.
					_ = os.Remove(cfg.CursorFile)
				}
			}
			b.Epoch = leaderEpoch
		}
	case meta.Role == "leader":
		// Leader restart with no competing regime found within the grace
		// window: resume it. The ack gate stays held until a follower
		// re-subscribes (Resumed), so even a probe-evading concurrent
		// election cannot make this node ack writes only it holds.
		b.Role = server.RoleLeader
		b.LeaderIndex = cfg.Index
		b.Resumed = len(cfg.Peers) > 1
	case cfg.Index == 0:
		// Cold takeover by the priority head: fence whatever regime the
		// on-disk epoch history belonged to by bumping past it (and past
		// anything live peers reported), so two regimes can never serve
		// under the same epoch.
		b.Role = server.RoleLeader
		b.LeaderIndex = 0
		if round.maxEpoch > b.Epoch {
			b.Epoch = round.maxEpoch
		}
		b.Epoch++
	default:
		// Cold follower with nobody answering yet: assume the priority
		// head will lead; the supervision loop re-probes until it does.
		b.Role = server.RoleFollower
		b.LeaderIndex = 0
	}

	// Failover regimes are fenced, and epoch 0 means "unfenced legacy"
	// on the wire — a failover leader never serves under it.
	if b.Role == server.RoleLeader && b.Epoch == 0 {
		b.Epoch = 1
	}
	return b, nil
}

// roundResult is one probe sweep's digest: the newest live leader (if any
// answered) and the highest epoch any peer reported.
type roundResult struct {
	leaderIdx                                 int
	leaderEpoch, leaderPrevInc, leaderPrevSeq uint64
	maxEpoch                                  uint64
}

// probeRound probes every other peer once.
func probeRound(cfg *BootstrapConfig) roundResult {
	r := roundResult{leaderIdx: -1}
	for i, p := range cfg.Peers {
		if i == cfg.Index {
			continue
		}
		m, err := Probe(p.Repl, cfg.DialTimeout)
		if err != nil {
			continue
		}
		if m.Epoch > r.maxEpoch {
			r.maxEpoch = m.Epoch
		}
		if server.ReplRole(m.Role) == server.RoleLeader && (r.leaderIdx < 0 || m.Epoch > r.leaderEpoch) {
			r.leaderIdx, r.leaderEpoch = i, m.Epoch
			r.leaderPrevInc, r.leaderPrevSeq = m.PrevInc, m.PrevSeq
		}
	}
	return r
}

// cursorPos mirrors repl.Position without importing the package (repl
// imports server; failover sits beside it and keeps its deps minimal).
type cursorPos struct {
	Inc   uint64 `json:"inc"`
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch"`
}

func readCursor(path string) cursorPos {
	var c cursorPos
	if path == "" {
		return c
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	if json.Unmarshal(data, &c) != nil {
		return cursorPos{}
	}
	return c
}

func cursorBeyond(c cursorPos, prevInc, prevSeq uint64) bool {
	if c.Inc != prevInc {
		return c.Inc > prevInc
	}
	return c.Seq > prevSeq
}

// resetDir wipes a WAL directory (segments, cursor, sidecars) so the node
// re-backfills from scratch.
func resetDir(dir string) error {
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("failover: resetting %s: %w", dir, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("failover: recreating %s: %w", dir, err)
	}
	return nil
}
