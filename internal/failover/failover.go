// Package failover supervises a replicated ordod cluster through leader
// death: it detects a silent leader by replication-heartbeat loss,
// elects the most-caught-up follower, and fences the old regime with a
// monotonically increasing epoch so a rejoining ex-leader can never serve
// or replicate state the new regime did not inherit (DESIGN.md §15).
//
// The design is deliberately minimal — crash-stop failures, at most one
// node down at a time, a static priority-ordered peer list, no network
// partitions. Under that model the safety argument is: every acknowledged
// write is covered by a follower WALACK (the server's replication-ack
// gate) or was written while no follower was subscribed; the election
// winner is the follower with the greatest (epoch, incarnation, seq)
// position among live peers, which therefore holds every gated ack; the
// winner bumps the epoch in its WAL segment headers before serving a
// single write, so any frame or subscription from the old regime is
// rejected by epoch comparison from then on; and a fenced ex-leader
// truncates its unshipped suffix — records no ack depended on — back to
// the winner's takeover cursor before it resubscribes.
package failover

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ordo/internal/wire"
)

// Peer is one cluster member: its replication listener and its
// client-facing serving address. The slice order is the election
// tie-break priority (index 0 leads a cold cluster).
type Peer struct {
	Repl   string `json:"repl"`
	Client string `json:"client"`
}

// ParsePeers parses the -peers flag form "repl@client,repl@client,...".
func ParsePeers(s string) ([]Peer, error) {
	var peers []Peer
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		i := strings.LastIndexByte(part, '@')
		if i <= 0 || i == len(part)-1 {
			return nil, fmt.Errorf("failover: peer %q is not repl-addr@client-addr", part)
		}
		peers = append(peers, Peer{Repl: part[:i], Client: part[i+1:]})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("failover: empty peer list")
	}
	return peers, nil
}

// Meta is the failover sidecar persisted next to the WAL: the regime this
// node last served under. The epoch here and in the WAL segment headers
// back each other up — bootstrap takes the max — and Role is what lets a
// restarting node tell "I was the leader, my log's tail coordinates are
// the stream's" from "I was a follower, my log is a local transcription".
type Meta struct {
	Role    string `json:"role"` // "leader" or "follower"
	Epoch   uint64 `json:"epoch"`
	PrevInc uint64 `json:"prev_inc"` // regime start (leader only)
	PrevSeq uint64 `json:"prev_seq"`
}

// MetaPath returns the sidecar path inside a WAL directory.
func MetaPath(dir string) string { return filepath.Join(dir, "failover.json") }

// ReadMeta loads the sidecar; a missing file is a zero Meta, and a corrupt
// one is an error the caller should surface (guessing a regime is how
// split brain starts).
func ReadMeta(dir string) (Meta, error) {
	var m Meta
	data, err := os.ReadFile(MetaPath(dir))
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("failover: corrupt %s: %w", MetaPath(dir), err)
	}
	return m, nil
}

// WriteMeta persists the sidecar atomically AND durably (temp + fsync +
// rename + dir sync), matching the durability of the log it describes.
// The temp file is fsynced before the rename: renaming first could expose
// an empty or torn failover.json after a power failure, and ReadMeta
// treats corruption as fatal — a node that cannot tell which regime it
// served must not guess.
func WriteMeta(dir string, m Meta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := MetaPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, MetaPath(dir)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Probe dials a peer's replication listener, sends a STATUS hello and
// returns the answer: role, epoch, stream or cursor position, regime
// start and serving address. One bounded round trip; any failure means
// "treat the peer as dead for this round". The hello carries epoch 0 —
// a probe observes, it does not announce.
func Probe(addr string, timeout time.Duration) (wire.ReplMsg, error) {
	return exchange(addr, &wire.ReplMsg{Kind: wire.ReplStatus}, timeout)
}

// Announce performs the same STATUS exchange as Probe but stamps the
// caller's regime — epoch, role and client address — on the hello, so the
// peer learns of the new regime the moment it is announced instead of at
// its next probe or stream frame. A freshly promoted leader announces to
// every peer; a stale leader that receives one demotes itself in place.
func Announce(addr string, self *wire.ReplMsg, timeout time.Duration) (wire.ReplMsg, error) {
	return exchange(addr, self, timeout)
}

func exchange(addr string, hello *wire.ReplMsg, timeout time.Duration) (wire.ReplMsg, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return wire.ReplMsg{}, err
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(timeout))
	p, err := wire.AppendReplMsg(nil, hello)
	if err != nil {
		return wire.ReplMsg{}, err
	}
	if err := wire.WriteReplFrame(nc, p); err != nil {
		return wire.ReplMsg{}, err
	}
	m, _, err := wire.ReadReplHello(bufio.NewReaderSize(nc, 4<<10), nil)
	if err != nil {
		return wire.ReplMsg{}, err
	}
	if m.Kind != wire.ReplStatus && m.Kind != wire.ReplReject {
		return wire.ReplMsg{}, fmt.Errorf("failover: probe of %s answered %v", addr, m.Kind)
	}
	return m, nil
}
