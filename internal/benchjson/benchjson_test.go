package benchjson

import (
	"path/filepath"
	"strings"
	"testing"
)

func sample() *File {
	return &File{
		Schema: SchemaVersion,
		Meta:   Meta{CreatedBy: "test", GOMAXPROCS: 4, Seed: 1},
		Scenarios: []Scenario{
			{Name: "read-heavy/wal=off/conns=4", OpsPerSec: 100000, P50Ns: 1000, P99Ns: 5000, P999Ns: 9000, Ops: 5000},
			{Name: "write-heavy/wal=batched/conns=1", OpsPerSec: 20000, P50Ns: 4000, P99Ns: 30000, P999Ns: 80000, Ops: 1000},
		},
		Micro: []Micro{
			{Name: "wire_encode_request", AllocsPerOp: 0},
			{Name: "server_redo_encode", AllocsPerOp: 0},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := sample()
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || len(got.Scenarios) != 2 || len(got.Micro) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Scenarios[0].Name != f.Scenarios[0].Name || got.Scenarios[0].OpsPerSec != f.Scenarios[0].OpsPerSec {
		t.Fatalf("scenario mismatch: %+v", got.Scenarios[0])
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := sample()
	f.Schema = SchemaVersion + 1
	if err := Write(path, f); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestCompareSelfIsClean is the acceptance-criterion shape: a file diffed
// against itself must pass with zero violations.
func TestCompareSelfIsClean(t *testing.T) {
	f := sample()
	r := Compare(f, f, Thresholds{})
	if !r.OK() {
		t.Fatalf("self-compare violations: %v", r.Violations)
	}
	if len(r.Lines) == 0 {
		t.Fatal("self-compare produced no report lines")
	}
}

func TestCompareCatchesRegressions(t *testing.T) {
	base, cur := sample(), sample()
	cur.Scenarios[0].OpsPerSec = base.Scenarios[0].OpsPerSec * 0.5 // -50%
	cur.Scenarios[1].P99Ns = base.Scenarios[1].P99Ns * 3           // +200%
	cur.Micro[0].AllocsPerOp = 2

	th := Thresholds{MaxOpsDrop: 0.3, MaxP99Grow: 0.5, MaxAllocGrow: 0.5}
	r := Compare(base, cur, th)
	if r.OK() {
		t.Fatal("regressions not flagged")
	}
	wantSubstrings := []string{"ops/s", "p99", "allocs/op"}
	for _, want := range wantSubstrings {
		found := false
		for _, v := range r.Violations {
			if strings.Contains(v, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no violation mentioning %q in %v", want, r.Violations)
		}
	}
}

func TestCompareToleratesWithinThreshold(t *testing.T) {
	base, cur := sample(), sample()
	cur.Scenarios[0].OpsPerSec = base.Scenarios[0].OpsPerSec * 0.8 // -20%
	cur.Scenarios[1].P99Ns = uint64(float64(base.Scenarios[1].P99Ns) * 1.3)

	th := Thresholds{MaxOpsDrop: 0.3, MaxP99Grow: 0.5, MaxAllocGrow: 0.5}
	if r := Compare(base, cur, th); !r.OK() {
		t.Fatalf("within-threshold drift flagged: %v", r.Violations)
	}
}

func TestCompareFlagsMissingEntries(t *testing.T) {
	base, cur := sample(), sample()
	cur.Scenarios = cur.Scenarios[:1]
	cur.Micro = cur.Micro[:1]
	r := Compare(base, cur, Thresholds{MaxOpsDrop: 1, MaxP99Grow: 1, MaxAllocGrow: 10})
	if len(r.Violations) != 2 {
		t.Fatalf("violations=%v, want exactly the two missing entries", r.Violations)
	}
}

func TestCompareListsNewEntries(t *testing.T) {
	base, cur := sample(), sample()
	cur.Scenarios = append(cur.Scenarios, Scenario{Name: "brand-new", OpsPerSec: 1})
	r := Compare(base, cur, Thresholds{})
	if !r.OK() {
		t.Fatalf("new entry treated as violation: %v", r.Violations)
	}
	found := false
	for _, l := range r.Lines {
		if strings.HasPrefix(l, "new  ") && strings.Contains(l, "brand-new") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new entry not reported: %v", r.Lines)
	}
}
