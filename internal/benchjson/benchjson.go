// Package benchjson defines the schema-versioned benchmark result file the
// ordo-benchrun harness emits (BENCH_<n>.json at the repo root) and the
// threshold comparison CI uses to catch regressions between two such files.
//
// The format is deliberately flat and append-only: new fields may be added,
// existing fields never change meaning, and SchemaVersion bumps only on an
// incompatible reshape — so a committed baseline stays comparable across
// the PRs that follow it.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion is the current file schema. Compare refuses to diff files
// from different schemas: a silent cross-schema comparison would report
// nonsense as regression (or worse, as a pass).
const SchemaVersion = 1

// File is one harness run: metadata, the macro scenario grid, and the
// allocation microbenches.
type File struct {
	Schema    int        `json:"schema"`
	Meta      Meta       `json:"meta"`
	Scenarios []Scenario `json:"scenarios"`
	Micro     []Micro    `json:"micro"`
}

// Meta records everything needed to judge whether two files are comparable
// and to reproduce a run.
type Meta struct {
	CreatedBy  string `json:"created_by"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GitRev     string `json:"git_rev"`
	Seed       int64  `json:"seed"`
	// DurationSec is the per-scenario wall-clock budget the run was invoked
	// with. It is metadata, not part of scenario names, so a short CI run
	// still matches a longer committed baseline scenario-for-scenario.
	DurationSec float64 `json:"duration_sec"`
}

// Scenario is one cell of the macro grid: a workload mix driven through a
// freshly booted server, measured from the client side.
type Scenario struct {
	// Name identifies the cell (e.g. "read-heavy/wal=off/conns=4") and is
	// the comparison key; it must not embed anything machine- or
	// duration-specific.
	Name     string  `json:"name"`
	Protocol string  `json:"protocol"`
	WAL      string  `json:"wal"` // "off", "flush", or "batched"
	Conns    int     `json:"conns"`
	// Shards is the single-writer lane count the server ran with. Zero
	// (files from before the field existed) means 1; the name carries a
	// "/shards=N" suffix only when N > 1, so pre-shard baselines keep
	// matching cell-for-cell.
	Shards int `json:"shards,omitempty"`
	Window   int     `json:"window"`
	Records  int     `json:"records"`
	Reads    float64 `json:"reads"`
	Theta    float64 `json:"theta"`

	Ops        uint64  `json:"ops"`
	Conflicts  uint64  `json:"conflicts"`
	Busy       uint64  `json:"busy"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Ns      uint64  `json:"p50_ns"`
	P99Ns      uint64  `json:"p99_ns"`
	P999Ns     uint64  `json:"p999_ns"`
}

// Micro is one allocation microbench: allocs per operation on a hot path,
// measured with testing.AllocsPerRun semantics (deterministic, so its
// comparison threshold can be tight even across machines).
type Micro struct {
	Name        string  `json:"name"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Load reads and validates one benchmark file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this tool speaks %d", path, f.Schema, SchemaVersion)
	}
	return &f, nil
}

// Write marshals f to path, indented for reviewable diffs.
func Write(path string, f *File) error {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

// Thresholds bound how much worse the current file may be than the
// baseline before Compare reports a violation. Fractions are relative
// (0.25 = 25% worse); MaxAllocGrow is absolute allocs/op, because the
// baseline is usually exactly zero.
type Thresholds struct {
	// MaxOpsDrop is the tolerated fractional throughput drop per scenario.
	MaxOpsDrop float64
	// MaxP99Grow is the tolerated fractional p99 latency growth per
	// scenario.
	MaxP99Grow float64
	// MaxAllocGrow is the tolerated absolute allocs/op growth per micro.
	MaxAllocGrow float64
}

// Report is a comparison's outcome: human-readable per-metric lines, and
// the subset that violated thresholds. OK reports whether the current file
// is within thresholds on every metric the baseline has.
type Report struct {
	Lines      []string
	Violations []string
}

// OK reports whether no threshold was violated.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Compare diffs cur against base. Scenarios and micros are matched by
// name; a baseline entry missing from cur is itself a violation (a
// benchmark that silently disappears is indistinguishable from one that
// regressed), while entries new in cur are informational only.
func Compare(base, cur *File, th Thresholds) *Report {
	r := &Report{}
	violate := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		r.Lines = append(r.Lines, "FAIL "+msg)
		r.Violations = append(r.Violations, msg)
	}
	pass := func(format string, args ...any) {
		r.Lines = append(r.Lines, "ok   "+fmt.Sprintf(format, args...))
	}

	curScen := make(map[string]*Scenario, len(cur.Scenarios))
	for i := range cur.Scenarios {
		curScen[cur.Scenarios[i].Name] = &cur.Scenarios[i]
	}
	for i := range base.Scenarios {
		b := &base.Scenarios[i]
		c, ok := curScen[b.Name]
		if !ok {
			violate("%s: scenario missing from current file", b.Name)
			continue
		}
		if b.OpsPerSec > 0 {
			drop := (b.OpsPerSec - c.OpsPerSec) / b.OpsPerSec
			if drop > th.MaxOpsDrop {
				violate("%s: ops/s %.0f -> %.0f (-%.1f%%, limit %.1f%%)",
					b.Name, b.OpsPerSec, c.OpsPerSec, drop*100, th.MaxOpsDrop*100)
			} else {
				pass("%s: ops/s %.0f -> %.0f (%+.1f%%)",
					b.Name, b.OpsPerSec, c.OpsPerSec, -drop*100)
			}
		}
		if b.P99Ns > 0 {
			grow := (float64(c.P99Ns) - float64(b.P99Ns)) / float64(b.P99Ns)
			if grow > th.MaxP99Grow {
				violate("%s: p99 %dns -> %dns (+%.1f%%, limit %.1f%%)",
					b.Name, b.P99Ns, c.P99Ns, grow*100, th.MaxP99Grow*100)
			} else {
				pass("%s: p99 %dns -> %dns (%+.1f%%)", b.Name, b.P99Ns, c.P99Ns, grow*100)
			}
		}
	}

	curMicro := make(map[string]*Micro, len(cur.Micro))
	for i := range cur.Micro {
		curMicro[cur.Micro[i].Name] = &cur.Micro[i]
	}
	for i := range base.Micro {
		b := &base.Micro[i]
		c, ok := curMicro[b.Name]
		if !ok {
			violate("%s: micro missing from current file", b.Name)
			continue
		}
		grow := c.AllocsPerOp - b.AllocsPerOp
		if grow > th.MaxAllocGrow {
			violate("%s: allocs/op %.2f -> %.2f (+%.2f, limit %.2f)",
				b.Name, b.AllocsPerOp, c.AllocsPerOp, grow, th.MaxAllocGrow)
		} else {
			pass("%s: allocs/op %.2f -> %.2f", b.Name, b.AllocsPerOp, c.AllocsPerOp)
		}
	}

	// New entries, for the reader's benefit.
	var news []string
	for name := range curScen {
		if !hasScenario(base, name) {
			news = append(news, name)
		}
	}
	for name := range curMicro {
		if !hasMicro(base, name) {
			news = append(news, name)
		}
	}
	sort.Strings(news)
	for _, name := range news {
		r.Lines = append(r.Lines, "new  "+name)
	}
	return r
}

func hasScenario(f *File, name string) bool {
	for i := range f.Scenarios {
		if f.Scenarios[i].Name == name {
			return true
		}
	}
	return false
}

func hasMicro(f *File, name string) bool {
	for i := range f.Micro {
		if f.Micro[i].Name == name {
			return true
		}
	}
	return false
}
