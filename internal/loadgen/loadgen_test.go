package loadgen

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"ordo/internal/db"
	"ordo/internal/db/ycsb"
	"ordo/internal/server"
)

// startServer boots a real ordod server on an ephemeral port and returns
// its address.
func startServer(t *testing.T) string {
	t.Helper()
	engine, err := db.New(db.OCC, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{DB: engine, Schema: ycsb.Schema()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestRunAgainstServer drives a small fixed-op run end to end: every op
// must complete, latencies must be recorded, and the server stats snapshot
// must be attached.
func TestRunAgainstServer(t *testing.T) {
	addr := startServer(t)
	res, err := Run(Config{
		Addr:      addr,
		Conns:     2,
		Window:    8,
		Ops:       200,
		Records:   256,
		Reads:     0.5,
		Seed:      1,
		DialFor:   5 * time.Second,
		OpTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 400 {
		t.Fatalf("done=%d, want 400 (2 conns x 200 ops)", res.Done)
	}
	overall := res.Overall()
	if overall.Count() != res.Done {
		t.Fatalf("histogram count %d != done %d", overall.Count(), res.Done)
	}
	if res.OpsPerSec() <= 0 {
		t.Fatalf("ops/s = %v, want > 0", res.OpsPerSec())
	}
	if res.Server == nil {
		t.Fatal("server stats snapshot missing")
	}
	if res.Server.Commits == 0 {
		t.Fatal("server reports zero commits after a completed run")
	}
}

// TestRunReportsIntervals checks the reporter contract other tooling greps
// for: with ReportEvery set, lines beginning "interval: " appear on
// ReportTo.
func TestRunReportsIntervals(t *testing.T) {
	addr := startServer(t)
	var buf bytes.Buffer
	res, err := Run(Config{
		Addr:        addr,
		Conns:       1,
		Window:      4,
		Seconds:     0.3,
		Records:     64,
		Reads:       0.9,
		Seed:        1,
		DialFor:     5 * time.Second,
		OpTimeout:   10 * time.Second,
		ReportEvery: 50 * time.Millisecond,
		ReportTo:    &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done == 0 {
		t.Fatal("no ops completed")
	}
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "interval: ") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no interval lines on ReportTo; got %q", buf.String())
	}
}

// TestRunRejectsBadConfig covers the parameter guard.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Addr: "127.0.0.1:1", Conns: 0, Window: 1, Records: 1}); err == nil {
		t.Fatal("zero Conns accepted")
	}
}
