package loadgen

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ordo/internal/client"
	"ordo/internal/db/ycsb"
	"ordo/internal/wire"
)

// FailoverConfig parameterizes RunFailover: a write-mostly load driven
// through the failover-aware client, designed to survive a leader kill
// mid-run and to prove afterwards that no acknowledged write was lost.
type FailoverConfig struct {
	// Endpoints are the client-facing addresses of every cluster node.
	Endpoints []string
	// Workers is the concurrent writer count; the keyspace is partitioned
	// across them so every key has exactly one writer (which is what makes
	// the per-key sequence check exact).
	Workers int
	// Keys is the total keyspace size.
	Keys int
	// Seconds bounds the load phase by wall-clock time.
	Seconds float64
	// OpTimeout bounds each I/O; RetryFor is the client's per-op retry
	// budget and must exceed the cluster's failover time.
	OpTimeout time.Duration
	RetryFor  time.Duration
	// HedgeAfter, when positive, hedges the read-back sweep's GETs.
	HedgeAfter time.Duration
	// ReportTo receives progress lines; nil discards them.
	ReportTo io.Writer
}

// FailoverResult is one failover run's tallies plus the post-run
// consistency sweep.
type FailoverResult struct {
	// Acked is the writes acknowledged OK across all workers.
	Acked uint64
	// Elapsed is the load phase wall-clock span.
	Elapsed time.Duration
	// MaxAckGap is the longest span between consecutive acknowledged
	// writes anywhere in the run — with a mid-run leader kill, this is the
	// observed unavailability window (last ack on the old leader to first
	// ack after promotion).
	MaxAckGap time.Duration
	// Client merges every worker's resilience tallies.
	Client client.Stats
	// SweptKeys is how many keys the read-back sweep checked; Violations
	// counts keys whose recovered value fell outside [acked, issued] — any
	// nonzero value means an acknowledged write was lost or an unissued
	// one appeared.
	SweptKeys  int
	Violations int
}

// ackClock tracks the global time-between-acks maximum across workers.
type ackClock struct {
	mu     sync.Mutex
	last   time.Time
	maxGap time.Duration
}

func (a *ackClock) note(now time.Time) {
	a.mu.Lock()
	if !a.last.IsZero() {
		if gap := now.Sub(a.last); gap > a.maxGap {
			a.maxGap = gap
		}
	}
	a.last = now
	a.mu.Unlock()
}

// RunFailover drives the cluster with per-key monotone writes and then
// verifies, key by key, that acked ≤ recovered ≤ issued:
//
//   - each key's value is a strictly increasing sequence number written
//     by exactly one worker (INSERT seq 1, then PUTs 2, 3, ...);
//   - "acked" is the highest sequence the server answered OK (or
//     DUPLICATE — a retried INSERT whose original landed);
//   - after the load, a fresh client reads every key back: a recovered
//     value below "acked" is a lost acknowledged write, and one above
//     "issued" is data from nowhere. Both count as Violations.
//
// The run is built to straddle a leader kill: ops retry through the
// resilient client for up to RetryFor, and the longest ack-to-ack gap is
// reported as the unavailability window.
func RunFailover(cfg FailoverConfig) (*FailoverResult, error) {
	if len(cfg.Endpoints) == 0 || cfg.Workers <= 0 || cfg.Keys < cfg.Workers || cfg.Seconds <= 0 {
		return nil, fmt.Errorf("loadgen: failover run needs Endpoints, Workers, Keys ≥ Workers and Seconds")
	}
	issued := make([]uint64, cfg.Keys)
	acked := make([]uint64, cfg.Keys)
	clock := &ackClock{}
	deadline := time.Now().Add(time.Duration(cfg.Seconds * float64(time.Second)))

	ccfg := client.Config{
		Endpoints: cfg.Endpoints,
		OpTimeout: cfg.OpTimeout,
		RetryFor:  cfg.RetryFor,
	}
	errs := make([]error, cfg.Workers)
	stats := make([]client.Stats, cfg.Workers)
	per := cfg.Keys / cfg.Workers
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		lo := w * per
		hi := lo + per
		if w == cfg.Workers-1 {
			hi = cfg.Keys
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			stats[w], errs[w] = failoverWorker(ccfg, lo, hi, issued, acked, clock, deadline)
		}(w, lo, hi)
	}
	wg.Wait()
	res := &FailoverResult{Elapsed: time.Since(start), MaxAckGap: clock.maxGap}
	for w := range stats {
		res.Client.NotLeaderRetries += stats[w].NotLeaderRetries
		res.Client.Redirects += stats[w].Redirects
		res.Client.Reconnects += stats[w].Reconnects
		res.Client.Hedges += stats[w].Hedges
		res.Client.Uncertain += stats[w].Uncertain
	}
	for k := range acked {
		res.Acked += acked[k]
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	if progress(cfg.ReportTo) {
		fmt.Fprintf(cfg.ReportTo, "failover load: %d keys written, max ack gap %v; sweeping\n",
			cfg.Keys, res.MaxAckGap.Round(time.Millisecond))
	}
	if err := failoverSweep(cfg, issued, acked, res); err != nil {
		return res, err
	}
	return res, nil
}

func progress(w io.Writer) bool { return w != nil }

// failoverWorker writes its key slice round-robin until the deadline.
// Every op goes through the resilient client, so a leader kill mid-run
// surfaces as elevated latency (bounded by RetryFor), not as an error.
func failoverWorker(ccfg client.Config, lo, hi int, issued, acked []uint64, clock *ackClock, deadline time.Time) (client.Stats, error) {
	cl, err := client.New(ccfg)
	if err != nil {
		return client.Stats{}, err
	}
	defer cl.Close()
	vals := make([]uint64, ycsb.Cols)
	for k := lo; ; k++ {
		if k == hi {
			k = lo
		}
		if time.Now().After(deadline) {
			return cl.Stats(), nil
		}
		seq := issued[k] + 1
		issued[k] = seq
		for i := range vals {
			vals[i] = seq
		}
		req := wire.Request{Op: wire.OpPut, Key: uint64(k), Vals: vals}
		if seq == 1 {
			req.Op = wire.OpInsert
		}
		resp, err := cl.Do(&req)
		if err != nil {
			return cl.Stats(), fmt.Errorf("key %d seq %d: %w", k, seq, err)
		}
		switch resp.Status {
		case wire.StatusOK:
		case wire.StatusDuplicate:
			// A retried INSERT whose first send landed before the leader
			// died: the row exists, the write is durable.
		case wire.StatusNotFound:
			// A PUT hitting a missing row means a previously acknowledged
			// INSERT vanished — exactly the loss class this harness exists
			// to catch.
			return cl.Stats(), fmt.Errorf("key %d: PUT found no row after INSERT was acked (lost write)", k)
		default:
			return cl.Stats(), fmt.Errorf("key %d seq %d: %v", k, seq, resp.Status)
		}
		acked[k] = seq
		clock.note(time.Now())
	}
}

// failoverSweep reads every key back through a fresh client and enforces
// acked ≤ recovered ≤ issued per key.
func failoverSweep(cfg FailoverConfig, issued, acked []uint64, res *FailoverResult) error {
	cl, err := client.New(client.Config{
		Endpoints:  cfg.Endpoints,
		OpTimeout:  cfg.OpTimeout,
		RetryFor:   cfg.RetryFor,
		HedgeAfter: cfg.HedgeAfter,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	for k := 0; k < cfg.Keys; k++ {
		resp, err := cl.Do(&wire.Request{Op: wire.OpGet, Key: uint64(k)})
		if err != nil {
			return fmt.Errorf("sweep key %d: %w", k, err)
		}
		var recovered uint64
		switch resp.Status {
		case wire.StatusOK:
			if len(resp.Row) > 0 {
				recovered = resp.Row[0]
			}
		case wire.StatusNotFound:
			recovered = 0
		default:
			return fmt.Errorf("sweep key %d: %v", k, resp.Status)
		}
		res.SweptKeys++
		if recovered < acked[k] || recovered > issued[k] {
			res.Violations++
			if progress(cfg.ReportTo) {
				fmt.Fprintf(cfg.ReportTo, "VIOLATION key %d: recovered seq %d outside [acked %d, issued %d]\n",
					k, recovered, acked[k], issued[k])
			}
		}
	}
	if res.Violations > 0 {
		return fmt.Errorf("loadgen: %d of %d keys violated acked ≤ recovered ≤ issued", res.Violations, res.SweptKeys)
	}
	return nil
}
