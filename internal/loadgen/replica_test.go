package loadgen

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"ordo/internal/db"
	"ordo/internal/db/ycsb"
	"ordo/internal/repl"
	"ordo/internal/server"
	"ordo/internal/wal"
)

// startReplPair boots an in-process durable leader and a tailing read-only
// follower over the YCSB schema, returning their serving addresses. Both
// are torn down via t.Cleanup in reverse order.
func startReplPair(t *testing.T) (leaderAddr, followerAddr string) {
	t.Helper()
	ldir, fdir := t.TempDir(), t.TempDir()

	lEngine, err := db.New(db.OCC, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ldev, err := wal.OpenFile(ldir, wal.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	llog := wal.New(ldev, nil)
	lstate := server.NewReplState(server.RoleLeader, 0, 0, 0)
	src, err := repl.NewSource(repl.SourceConfig{
		Dir:            ldir,
		Log:            llog,
		Incarnation:    ldev.Incarnation(),
		State:          lstate,
		WatermarkEvery: 10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	lsrv, err := server.New(server.Config{DB: lEngine, Schema: ycsb.Schema(), WAL: llog, Repl: lstate, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	lln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lServeDone := make(chan error, 1)
	replDone := make(chan error, 1)
	go func() { lServeDone <- lsrv.Serve(lln) }()
	go func() { replDone <- src.Serve(replLn) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := lsrv.Shutdown(ctx); err != nil {
			t.Errorf("leader shutdown: %v", err)
		}
		<-lServeDone
		src.Close()
		<-replDone
		ldev.Close()
	})

	fEngine, err := db.New(db.OCC, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fdev, err := wal.OpenFile(fdir, wal.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	flog := wal.New(fdev, nil)
	fstate := server.NewReplState(server.RoleFollower, 0, time.Second, 1<<20)
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Addr:       replLn.Addr().String(),
		DB:         fEngine,
		Log:        flog,
		State:      fstate,
		StateFile:  filepath.Join(fdir, "cursor.json"),
		RetryEvery: 20 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	fsrv, err := server.New(server.Config{DB: fEngine, Schema: ycsb.Schema(), ReadOnly: true, Repl: fstate, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	fServeDone := make(chan error, 1)
	go func() {
		defer close(runDone)
		fol.Run(fctx)
	}()
	go func() { fServeDone <- fsrv.Serve(fln) }()
	t.Cleanup(func() {
		fcancel()
		<-runDone
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := fsrv.Shutdown(ctx); err != nil {
			t.Errorf("follower shutdown: %v", err)
		}
		<-fServeDone
		fdev.Close()
	})

	return lln.Addr().String(), fln.Addr().String()
}

// TestRunWithReplicaProbe drives a timed run with a follower prober
// attached: the prober must complete rounds, observe zero staleness
// violations, and record visibility latencies — and a key-range sweep of
// leader and follower must converge to the same digest.
func TestRunWithReplicaProbe(t *testing.T) {
	leaderAddr, followerAddr := startReplPair(t)

	const records = 128
	res, err := Run(Config{
		Addr:      leaderAddr,
		Conns:     2,
		Window:    8,
		Seconds:   0.4,
		Records:   records,
		Reads:     0.5,
		Seed:      1,
		DialFor:   5 * time.Second,
		OpTimeout: 10 * time.Second,
		Replicas:  []string{followerAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replicas) != 1 {
		t.Fatalf("replica tallies: %d, want 1", len(res.Replicas))
	}
	rp := &res.Replicas[0]
	if rp.Addr != followerAddr {
		t.Fatalf("replica addr %q, want %q", rp.Addr, followerAddr)
	}
	if rp.Probes == 0 {
		t.Fatal("prober completed zero rounds over a 400ms run")
	}
	if rp.Stale != 0 {
		t.Fatalf("%d read-your-writes violations", rp.Stale)
	}
	if rp.Visibility.Count() != rp.Probes {
		t.Fatalf("visibility samples %d != probes %d", rp.Visibility.Count(), rp.Probes)
	}

	// Sweep both sides: the follower must converge to the leader's digest.
	lead, err := Sweep(leaderAddr, records, 16, 5*time.Second, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if lead.Found != records {
		t.Fatalf("leader sweep found %d of %d preloaded keys", lead.Found, records)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, err := Sweep(followerAddr, records, 16, 5*time.Second, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got == lead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower sweep %+v never converged to leader %+v", got, lead)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSweepRejectsBadConfig pins the sweep parameter guard.
func TestSweepRejectsBadConfig(t *testing.T) {
	if _, err := Sweep("127.0.0.1:1", 0, 1, time.Millisecond, time.Second); err == nil {
		t.Fatal("zero records accepted")
	}
}
