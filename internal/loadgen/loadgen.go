// Package loadgen drives an ordod server with a YCSB-shaped workload over
// the wire protocol: a pool of closed-loop client connections, each
// pipelining a window of requests, measuring throughput and per-op-type
// latency quantiles from the client side of the socket.
//
// It is the engine behind both cmd/ordo-loadgen (flags → Config) and
// cmd/ordo-benchrun (scenario grid → Config), so the two always measure
// with identical client behavior.
//
// CONFLICT and BUSY responses are legitimate protocol answers: the op is
// re-issued and counted separately. Any ERR status, decode failure or
// transport error is a protocol error and fails the run.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"ordo/internal/db/ycsb"
	"ordo/internal/hist"
	"ordo/internal/telemetry/span"
	"ordo/internal/wire"
)

// Op classes index the per-type histograms in a Result.
const (
	ClassGet = iota
	ClassPut
	ClassTxn
	NClasses
)

// ClassNames maps a class index to its display name.
var ClassNames = [NClasses]string{"GET", "PUT", "TXN"}

// Config parameterizes one run. The zero value is not runnable; Conns,
// Window and Records must be positive.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns is the client connection count (one goroutine each).
	Conns int
	// Window is the pipelined requests in flight per connection.
	Window int
	// Ops is the op count per connection; ignored when Seconds is positive.
	Ops int
	// Seconds bounds the run by wall-clock time when positive.
	Seconds float64
	// Records is the keyspace size, preloaded before the run.
	Records int
	// Reads is the fraction of ops that are GETs.
	Reads float64
	// Theta is the Zipfian skew (0 = uniform).
	Theta float64
	// TxnOps, when positive, sends TXN frames of this many ops instead of
	// simple ops.
	TxnOps int
	// Seed is the base RNG seed; connection i uses Seed+i, so a fixed seed
	// reproduces the exact request sequence.
	Seed int64
	// DialFor keeps retrying the first dial for this long.
	DialFor time.Duration
	// OpTimeout is the per-I/O deadline; a read or flush exceeding it fails
	// the run instead of hanging (0 disables).
	OpTimeout time.Duration
	// ReportEvery prints one interval line per period to ReportTo while
	// running (0 disables).
	ReportEvery time.Duration
	// ReportTo receives the interval lines; nil discards them.
	ReportTo io.Writer
	// SkipPreload assumes the keyspace is already loaded (a previous run
	// against the same server).
	SkipPreload bool
	// Replicas lists follower addresses to probe during the run: each gets
	// a dedicated write→read-your-writes prober against a reserved key,
	// counting NOT_YET answers and staleness violations and timing
	// ack-to-visible latency (see replica.go).
	Replicas []string
	// TraceSample is the fraction of requests stamped with a client-minted
	// trace ID (0 disables). The server force-samples a stamped request, so
	// every stamped op yields a full server-side span set.
	TraceSample float64
	// TraceScrape lists admin endpoints ("host:port" or full URLs) whose
	// /spans rings are scraped after the run to build Result.Stages — the
	// per-stage latency breakdown the run report prints.
	TraceScrape []string
}

// Result is one run's aggregated tallies.
type Result struct {
	// Done is the ops completed OK across all connections.
	Done uint64
	// Conflicts and Busy count re-issued answers.
	Conflicts uint64
	Busy      uint64
	// Elapsed is the measured wall-clock span of the worker pool.
	Elapsed time.Duration
	// Hists holds per-class client-side latency histograms.
	Hists [NClasses]hist.H
	// Server is the server's own stats snapshot fetched after the run; nil
	// when the fetch failed.
	Server *wire.Stats
	// Replicas holds one prober tally per configured follower.
	Replicas []ReplicaResult
	// Traced counts requests that carried a client-minted trace ID.
	Traced uint64
	// Stages is the per-stage server-side latency breakdown scraped from
	// Config.TraceScrape after the run, indexed like span.StageNames();
	// nil when no scrape targets were configured or none answered.
	Stages []hist.H
}

// Overall merges every class histogram into one latency distribution.
func (r *Result) Overall() hist.H {
	var h hist.H
	for c := 0; c < NClasses; c++ {
		h.Merge(&r.Hists[c])
	}
	return h
}

// OpsPerSec is the run's aggregate completed-op throughput.
func (r *Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Done) / r.Elapsed.Seconds()
}

// workerResult is one connection's tallies. The hists and counters belong
// to the worker alone until wg.Wait; only tick is shared with the
// interval reporter, under mu.
type workerResult struct {
	hists     [NClasses]hist.H
	done      uint64 // ops completed OK
	conflicts uint64 // CONFLICT answers (re-issued)
	busy      uint64 // BUSY answers (re-issued)
	traced    uint64 // requests stamped with a trace ID
	err       error

	// reporting turns on tick recording; set once before the worker starts.
	reporting bool
	mu        sync.Mutex
	tick      hist.H // completed ops since the reporter's last drain
}

// Run executes one configured load run and returns its aggregate result.
// A non-nil Result comes back even on error when at least the setup
// succeeded, so callers can report partial tallies.
func Run(cfg Config) (*Result, error) {
	if cfg.Conns <= 0 || cfg.Window <= 0 || cfg.Records <= 0 {
		return nil, fmt.Errorf("loadgen: Conns, Window and Records must be positive")
	}
	gcfg := ycsb.Config{Records: cfg.Records, ReadRatio: cfg.Reads, Theta: cfg.Theta}
	if _, err := ycsb.NewGen(gcfg, 0); err != nil {
		return nil, err
	}

	// Wait for the server, then preload the keyspace on one connection.
	nc, err := dialRetry(cfg.Addr, cfg.DialFor)
	if err != nil {
		return nil, err
	}
	if !cfg.SkipPreload {
		if err := preload(wire.NewConn(deadlineConn{nc, cfg.OpTimeout}), cfg.Records, cfg.Window); err != nil {
			nc.Close()
			return nil, fmt.Errorf("preload: %w", err)
		}
	}
	nc.Close()

	var deadline time.Time
	if cfg.Seconds > 0 {
		deadline = time.Now().Add(time.Duration(cfg.Seconds * float64(time.Second)))
	}

	results := make([]workerResult, cfg.Conns)
	for i := range results {
		results[i].reporting = cfg.ReportEvery > 0 && cfg.ReportTo != nil
	}
	// Replica probers run for the span of the worker pool: they write on
	// the leader and chase the writes onto each follower.
	stopProbe := make(chan struct{})
	joinProbers := runProbers(&cfg, stopProbe)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen, err := ycsb.NewGen(gcfg, cfg.Seed+int64(i))
			if err != nil {
				results[i].err = err
				return
			}
			sampler := span.NewSampler(cfg.TraceSample, uint64(cfg.Seed)+uint64(i)+1)
			results[i].err = runConn(cfg.Addr, gen, &results[i],
				cfg.Window, cfg.Ops, deadline, cfg.TxnOps, cfg.OpTimeout, sampler)
		}(i)
	}
	var stopReport, reportDone chan struct{}
	if cfg.ReportEvery > 0 && cfg.ReportTo != nil {
		stopReport = make(chan struct{})
		reportDone = make(chan struct{})
		go func() {
			defer close(reportDone)
			reporter(cfg.ReportTo, results, cfg.ReportEvery, stopReport)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopProbe)
	if stopReport != nil {
		// Join, not just signal: the caller may read ReportTo (or its own
		// buffer behind it) the moment Run returns.
		close(stopReport)
		<-reportDone
	}

	res := &Result{Elapsed: elapsed}
	var firstErr error
	res.Replicas, err = joinProbers()
	if err != nil {
		firstErr = fmt.Errorf("replica probe: %w", err)
	}
	for i := range results {
		if results[i].err != nil && firstErr == nil {
			firstErr = fmt.Errorf("conn %d: %w", i, results[i].err)
		}
		res.Done += results[i].done
		res.Conflicts += results[i].conflicts
		res.Busy += results[i].busy
		res.Traced += results[i].traced
		for c := 0; c < NClasses; c++ {
			res.Hists[c].Merge(&results[i].hists[c])
		}
	}
	res.Stages = scrapeStages(cfg.TraceScrape, cfg.OpTimeout)

	// Close with the server's own view of the run.
	if nc, err := dialRetry(cfg.Addr, cfg.DialFor); err == nil {
		c := wire.NewConn(deadlineConn{nc, cfg.OpTimeout})
		if resp, err := c.Do(&wire.Request{Op: wire.OpStats}); err == nil {
			res.Server = resp.Stats
		}
		nc.Close()
	}

	if firstErr != nil {
		return res, firstErr
	}
	if res.Done == 0 {
		return res, fmt.Errorf("loadgen: no ops completed")
	}
	return res, nil
}

// reporter prints one progress line per interval: throughput and latency
// quantiles over the ops completed since the previous line, from a merge
// of every worker's tick histogram (drained and reset under its lock).
func reporter(w io.Writer, results []workerResult, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			var h hist.H
			for i := range results {
				r := &results[i]
				r.mu.Lock()
				h.Merge(&r.tick)
				r.tick = hist.H{}
				r.mu.Unlock()
			}
			dt := now.Sub(last).Seconds()
			last = now
			if h.Count() == 0 || dt <= 0 {
				fmt.Fprintf(w, "interval: 0 ops\n")
				continue
			}
			fmt.Fprintf(w, "interval: %.0f ops/s p50=%v p99=%v p999=%v\n",
				float64(h.Count())/dt,
				time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
				time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
				time.Duration(h.Quantile(0.999)).Round(time.Microsecond))
		}
	}
}

// deadlineConn arms a fresh deadline before every Read and Write, turning
// OpTimeout into a per-I/O bound: any single blocking syscall past it
// surfaces a net timeout error instead of hanging the connection forever
// (e.g. against a wedged or drop-everything server).
type deadlineConn struct {
	net.Conn
	d time.Duration
}

func (c deadlineConn) Read(p []byte) (int, error) {
	if c.d > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(c.d))
	}
	return c.Conn.Read(p)
}

func (c deadlineConn) Write(p []byte) (int, error) {
	if c.d > 0 {
		c.Conn.SetWriteDeadline(time.Now().Add(c.d))
	}
	return c.Conn.Write(p)
}

// dialRetry dials addr, retrying while the server comes up.
func dialRetry(addr string, dialFor time.Duration) (net.Conn, error) {
	var lastErr error
	stop := time.Now().Add(dialFor)
	for {
		nc, err := net.Dial("tcp", addr)
		if err == nil {
			return nc, nil
		}
		lastErr = err
		if time.Now().After(stop) {
			return nil, fmt.Errorf("dial %s: %w", addr, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// preload pipelines INSERTs for the whole keyspace; DUPLICATE answers are
// fine (another loadgen or an earlier run already loaded the row).
func preload(c *wire.Conn, records, window int) error {
	inFlight := 0
	next := 0
	answered := 0
	for answered < records {
		for inFlight < window && next < records {
			vals := make([]uint64, ycsb.Cols)
			for j := range vals {
				vals[j] = uint64(next)
			}
			if err := c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: uint64(next), Vals: vals}); err != nil {
				return err
			}
			next++
			inFlight++
		}
		if err := c.Flush(); err != nil {
			return err
		}
		resp, err := c.ReadResponse()
		if err != nil {
			return err
		}
		if resp.Status != wire.StatusOK && resp.Status != wire.StatusDuplicate {
			return fmt.Errorf("key %d: %v", answered, resp.Status)
		}
		answered++
		inFlight--
	}
	return nil
}

// pendingOp is one in-flight request with its issue time and class.
type pendingOp struct {
	req   wire.Request
	class int
	sent  time.Time
}

// runConn is one closed-loop connection: keep the pipeline full, read one
// response, classify it, refill.
func runConn(addr string, gen *ycsb.Gen, res *workerResult,
	window, ops int, deadline time.Time, txnOps int, opTO time.Duration,
	sampler span.Sampler) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	c := wire.NewConn(deadlineConn{nc, opTO})

	mkReq := func() (wire.Request, int) {
		var r wire.Request
		class := ClassTxn
		if txnOps > 0 {
			sub := make([]wire.Request, txnOps)
			for i := range sub {
				sub[i] = simpleReq(gen)
			}
			r = wire.Request{Op: wire.OpTxn, Ops: sub}
		} else {
			r = simpleReq(gen)
			class = ClassPut
			if r.Op == wire.OpGet {
				class = ClassGet
			}
		}
		// A client-minted trace ID rides the top-level frame only (the wire
		// layer forbids the flag on TXN sub-ops) and force-samples the
		// request server-side; re-issues keep the same ID.
		if id, ok := sampler.Sample(); ok {
			r.Trace = uint64(id)
			res.traced++
		}
		return r, class
	}

	timed := !deadline.IsZero()
	stopIssuing := func(issued int) bool {
		if timed {
			return time.Now().After(deadline)
		}
		return issued >= ops
	}

	var inFlight []pendingOp
	issued := 0
	send := func(p pendingOp) error {
		if err := c.WriteRequest(&p.req); err != nil {
			return err
		}
		p.sent = time.Now()
		inFlight = append(inFlight, p)
		return nil
	}

	for {
		for len(inFlight) < window && !stopIssuing(issued) {
			req, class := mkReq()
			if err := send(pendingOp{req: req, class: class}); err != nil {
				return err
			}
			issued++
		}
		if len(inFlight) == 0 {
			return nil // issued everything and drained
		}
		if err := c.Flush(); err != nil {
			return err
		}
		resp, err := c.ReadResponse()
		if err != nil {
			return fmt.Errorf("after %d ops: %w", res.done, err)
		}
		p := inFlight[0]
		inFlight = inFlight[1:]
		switch resp.Status {
		case wire.StatusOK:
			d := time.Since(p.sent)
			res.hists[p.class].RecordDuration(d)
			if res.reporting {
				res.mu.Lock()
				res.tick.RecordDuration(d)
				res.mu.Unlock()
			}
			res.done++
		case wire.StatusConflict:
			res.conflicts++
			if err := send(p); err != nil {
				return err
			}
		case wire.StatusBusy:
			res.busy++
			if err := send(p); err != nil {
				return err
			}
		default:
			return fmt.Errorf("op %v answered %v", p.req.Op, resp.Status)
		}
	}
}

// scrapeStages fetches /spans from each admin endpoint and folds every
// span with an extent into a per-stage latency histogram, indexed like
// span.StageNames(). Unreachable endpoints are skipped — the breakdown is
// a post-run report, not a correctness gate. Returns nil when no endpoint
// was configured or none answered.
func scrapeStages(endpoints []string, timeout time.Duration) []hist.H {
	if len(endpoints) == 0 {
		return nil
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	client := &http.Client{Timeout: timeout}
	var hs []hist.H
	for _, ep := range endpoints {
		base := strings.TrimSpace(ep)
		if base == "" {
			continue
		}
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		resp, err := client.Get(base + "/spans")
		if err != nil {
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		var d span.Dump
		if err := json.Unmarshal(body, &d); err != nil {
			continue
		}
		if hs == nil {
			hs = make([]hist.H, len(span.StageNames()))
		}
		for i := range d.Spans {
			if sp := &d.Spans[i]; sp.Dur > 0 && int(sp.Stage) < len(hs) {
				hs[sp.Stage].Record(sp.Dur)
			}
		}
	}
	return hs
}

// simpleReq draws one GET or PUT from the generator.
func simpleReq(gen *ycsb.Gen) wire.Request {
	k := gen.Key()
	if gen.IsRead() {
		return wire.Request{Op: wire.OpGet, Key: k}
	}
	vals := make([]uint64, ycsb.Cols)
	for j := range vals {
		vals[j] = k
	}
	return wire.Request{Op: wire.OpPut, Key: k, Vals: vals}
}
