// Replica probing and key-range sweeps: the read-fan-out half of a
// replicated load run.
//
// A prober measures what the serving path promises, end to end: every
// leader-acked write carries a durability token (the commit timestamp the
// redo record was logged at), and a GET_AT on a follower with MinTS set to
// that token must either answer NOT_YET — the safe-read watermark has not
// reached the token — or serve a row that includes the write. A served row
// that predates the token is a read-your-writes violation and is counted,
// never excused.
package loadgen

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"ordo/internal/db/ycsb"
	"ordo/internal/hist"
	"ordo/internal/wire"
)

// probeKeyBase places probe keys far outside any YCSB keyspace, so the
// probers never conflict with the bulk workload.
const probeKeyBase = uint64(1) << 60

// probeRetryEvery is the poll cadence while a follower answers NOT_YET.
const probeRetryEvery = 200 * time.Microsecond

// ReplicaResult tallies one follower's prober.
type ReplicaResult struct {
	// Addr is the follower's serving address.
	Addr string
	// Probes is the completed write→visible rounds.
	Probes uint64
	// NotYet counts NOT_YET answers observed while waiting for the
	// watermark to reach a token. Expected and healthy; its ratio to
	// Probes is a lag signal, not a failure.
	NotYet uint64
	// Stale counts read-your-writes violations: the follower served a
	// read at/above the token but the row predated the write (or was
	// missing). Any nonzero value is a correctness failure.
	Stale uint64
	// Visibility is the leader-ack→follower-visible latency distribution;
	// its p99 is the run's staleness bound.
	Visibility hist.H
}

// probeReplica runs one write→read-your-writes loop against a follower
// until stop closes: PUT on the leader, then GET_AT(token) on the replica
// until the watermark admits it, timing ack-to-visible.
func probeReplica(cfg *Config, replica string, key uint64, stop <-chan struct{}) (ReplicaResult, error) {
	res := ReplicaResult{Addr: replica}
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	lnc, err := dialRetry(cfg.Addr, cfg.DialFor)
	if err != nil {
		return res, err
	}
	defer lnc.Close()
	lc := wire.NewConn(deadlineConn{lnc, cfg.OpTimeout})
	rnc, err := dialRetry(replica, cfg.DialFor)
	if err != nil {
		return res, err
	}
	defer rnc.Close()
	rc := wire.NewConn(deadlineConn{rnc, cfg.OpTimeout})

	row := func(seq uint64) []uint64 {
		vals := make([]uint64, ycsb.Cols)
		vals[0] = key
		vals[1] = seq
		return vals
	}
	// write puts (key, seq) on the leader and returns the durability
	// token, re-issuing CONFLICT/BUSY like every other loadgen op.
	write := func(op wire.Op, seq uint64) (uint64, error) {
		for {
			r, err := lc.Do(&wire.Request{Op: op, Key: key, Vals: row(seq)})
			if err != nil {
				return 0, err
			}
			switch r.Status {
			case wire.StatusOK:
				if r.TS == 0 {
					return 0, fmt.Errorf("replica probe: leader acked without a durability token (not durable?)")
				}
				return r.TS, nil
			case wire.StatusConflict, wire.StatusBusy:
				continue
			default:
				return 0, fmt.Errorf("replica probe: %v on leader answered %v", op, r.Status)
			}
		}
	}

	seq := uint64(0)
	op := wire.OpInsert
	for !stopped() {
		token, err := write(op, seq)
		if err != nil {
			if stopped() {
				break
			}
			return res, err
		}
		op = wire.OpPut

		// Poll the follower at the token until the watermark admits the
		// read; each refusal is an honest NOT_YET, each admission must
		// include the write.
		acked := time.Now()
		for {
			r, err := rc.Do(&wire.Request{Op: wire.OpGetAt, Key: key, MinTS: token})
			if err != nil {
				if stopped() {
					return res, nil
				}
				return res, err
			}
			if r.Status == wire.StatusNotYet {
				res.NotYet++
				if stopped() {
					return res, nil
				}
				time.Sleep(probeRetryEvery)
				continue
			}
			switch {
			case r.Status == wire.StatusOK && r.Row[1] >= seq:
				res.Visibility.RecordDuration(time.Since(acked))
			case r.Status == wire.StatusOK, r.Status == wire.StatusNotFound:
				// Admitted the read but served state older than the
				// token: the watermark lied.
				res.Stale++
			default:
				return res, fmt.Errorf("GET_AT answered %v", r.Status)
			}
			break
		}
		res.Probes++
		seq++
	}
	return res, nil
}

// SweepResult is a deterministic digest of a server's key range.
type SweepResult struct {
	// Found is how many keys in [0, records) exist.
	Found uint64
	// Checksum folds every key's status and row into one FNV-1a value;
	// two servers agree on the range iff their checksums match.
	Checksum uint64
}

// Sweep reads every key in [0, records) from addr in pipelined order and
// digests the answers. Comparing a leader's and a follower's sweep checks
// convergence without shipping either data set anywhere.
func Sweep(addr string, records, window int, dialFor, opTimeout time.Duration) (SweepResult, error) {
	var res SweepResult
	if records <= 0 || window <= 0 {
		return res, fmt.Errorf("loadgen: sweep records and window must be positive")
	}
	nc, err := dialRetry(addr, dialFor)
	if err != nil {
		return res, err
	}
	defer nc.Close()
	c := wire.NewConn(deadlineConn{nc, opTimeout})

	h := fnv.New64a()
	var buf [8]byte
	sum := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}

	inFlight, next, answered := 0, uint64(0), uint64(0)
	for answered < uint64(records) {
		for inFlight < window && next < uint64(records) {
			if err := c.WriteRequest(&wire.Request{Op: wire.OpGet, Key: next}); err != nil {
				return res, err
			}
			next++
			inFlight++
		}
		if err := c.Flush(); err != nil {
			return res, err
		}
		r, err := c.ReadResponse()
		if err != nil {
			return res, err
		}
		sum(answered)
		sum(uint64(r.Status))
		switch r.Status {
		case wire.StatusOK:
			res.Found++
			for _, v := range r.Row {
				sum(v)
			}
		case wire.StatusNotFound:
		default:
			return res, fmt.Errorf("sweep key %d: %v", answered, r.Status)
		}
		answered++
		inFlight--
	}
	res.Checksum = h.Sum64()
	return res, nil
}

// runProbers starts one prober per configured replica and returns a join
// function that stops them and collects their tallies.
func runProbers(cfg *Config, stop <-chan struct{}) func() ([]ReplicaResult, error) {
	if len(cfg.Replicas) == 0 {
		return func() ([]ReplicaResult, error) { return nil, nil }
	}
	results := make([]ReplicaResult, len(cfg.Replicas))
	errs := make([]error, len(cfg.Replicas))
	done := make(chan struct{})
	go func() {
		defer close(done)
		var inner sync.WaitGroup
		for i, addr := range cfg.Replicas {
			inner.Add(1)
			go func(i int, addr string) {
				defer inner.Done()
				results[i], errs[i] = probeReplica(cfg, addr, probeKeyBase+uint64(i), stop)
			}(i, addr)
		}
		inner.Wait()
	}()
	return func() ([]ReplicaResult, error) {
		<-done
		for i, err := range errs {
			if err != nil {
				return results, fmt.Errorf("replica %s: %w", cfg.Replicas[i], err)
			}
		}
		return results, nil
	}
}
