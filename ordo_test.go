package ordo_test

import (
	"sync/atomic"
	"testing"

	"ordo"
)

// The root package is a façade over internal/core; these tests pin the
// exported surface a downstream user programs against.

func TestPublicAPIRoundTrip(t *testing.T) {
	o, b, err := ordo.Calibrate(ordo.CalibrationOptions{Runs: 10})
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if b.CPUs < 1 {
		t.Fatalf("calibrated over %d CPUs", b.CPUs)
	}
	t0 := o.GetTime()
	t1 := o.NewTime(t0)
	if o.CmpTime(t1, t0) != ordo.After {
		t.Fatalf("NewTime result not After: %d vs %d", t1, t0)
	}
	if o.CmpTime(t0, t1) != ordo.Before {
		t.Fatal("CmpTime not antisymmetric")
	}
}

func TestPublicNewWithExplicitBoundary(t *testing.T) {
	// A system that calibrates out of band (hypervisor-provided bound,
	// §7) constructs the primitive directly.
	var now ordo.Time
	clock := ordo.ClockFunc(func() ordo.Time { now += 10; return now })
	o := ordo.New(clock, 100)
	if o.Boundary() != 100 {
		t.Fatalf("Boundary() = %d", o.Boundary())
	}
	if got := o.CmpTime(50, 200); got != ordo.Before {
		t.Fatalf("CmpTime(50,200) = %d", got)
	}
	if got := o.CmpTime(150, 200); got != ordo.Uncertain {
		t.Fatalf("CmpTime(150,200) = %d, want Uncertain", got)
	}
}

func TestPublicComputeBoundaryWithCustomSampler(t *testing.T) {
	s := pairSampler{n: 3, offset: 40}
	b, err := ordo.ComputeBoundary(s, ordo.CalibrationOptions{Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b.Global != 40 {
		t.Fatalf("Global = %d, want 40", b.Global)
	}
}

type pairSampler struct {
	n      int
	offset int64
}

func (p pairSampler) NumCPUs() int { return p.n }
func (p pairSampler) MeasureOffset(w, r, runs int) (int64, error) {
	return p.offset, nil
}

func TestHardwareClockExported(t *testing.T) {
	a := ordo.Hardware.Now()
	b := ordo.Hardware.Now()
	if b < a {
		t.Fatalf("hardware clock went backwards: %d -> %d", a, b)
	}
}

func TestConstantsMatch(t *testing.T) {
	if ordo.Before != -1 || ordo.Uncertain != 0 || ordo.After != 1 {
		t.Fatal("comparison constants changed")
	}
}

func TestPublicHealthMonitorSmoke(t *testing.T) {
	// The health façade: instrument a primitive, drive a pass by hand,
	// and read a snapshot that reflects both hot-path and cold-path state.
	var now atomic.Uint64
	clock := ordo.ClockFunc(func() ordo.Time { return ordo.Time(now.Add(25)) })
	o := ordo.New(clock, 100)

	stats := ordo.NewHealthStats()
	ins := ordo.Instrument(o, stats)
	ins.CmpTime(ins.GetTime(), ins.GetTime())
	ins.NewTime(ins.GetTime())

	m := ordo.NewMonitor(o, ordo.MonitorOptions{
		Sampler: fixedSampler{offset: 200},
		Stats:   stats,
	})
	if err := m.RunOnce(); err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	snap := m.Snapshot()
	if snap.Passes != 1 {
		t.Fatalf("Passes = %d, want 1", snap.Passes)
	}
	if snap.BoundaryTicks <= 100 {
		t.Fatalf("boundary not widened: %d", snap.BoundaryTicks)
	}
	if snap.NewTimeCalls == 0 || snap.CmpUncertain+snap.CmpBefore+snap.CmpAfter == 0 {
		t.Fatal("snapshot missing hot-path counters")
	}
}

// fixedSampler reports a constant offset between every CPU pair.
type fixedSampler struct{ offset int64 }

func (fixedSampler) NumCPUs() int { return 2 }
func (s fixedSampler) MeasureOffset(_, _, _ int) (int64, error) {
	return s.offset, nil
}
