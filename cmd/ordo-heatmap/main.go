// Command ordo-heatmap renders the paper's Figure 9: the pairwise
// clock-offset matrix of a machine, as an ASCII heatmap. By default it
// renders the four simulated paper machines; with -machine it renders
// just one.
//
// The heatmaps make the paper's key observation visible: offsets are
// never negative, adjacent cores have the smallest offsets, and on Xeon
// and ARM one socket's offsets are 4-8x higher in one direction because
// its clock received RESET late.
//
// Usage:
//
//	ordo-heatmap                     # all four machines
//	ordo-heatmap -machine arm        # one machine
//	ordo-heatmap -machine xeon -cell # numeric cells instead of shades
package main

import (
	"flag"
	"fmt"
	"os"

	"ordo/internal/machine"
	"ordo/internal/topology"
)

// shades maps normalized offset to density characters.
var shades = []rune(" .:-=+*#%@")

func main() {
	var (
		name = flag.String("machine", "all", "xeon|phi|amd|arm|all")
		cell = flag.Bool("cell", false, "print numeric offsets instead of shades")
		runs = flag.Int("runs", 40, "protocol iterations per pair")
	)
	flag.Parse()

	var machines []*topology.Machine
	if *name == "all" {
		machines = topology.All()
	} else {
		m, err := topology.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		machines = []*topology.Machine{m}
	}

	for _, t := range machines {
		if err := render(t, *cell, *runs); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", t.Name, err)
			os.Exit(1)
		}
	}
}

func render(t *topology.Machine, cell bool, runs int) error {
	s := &machine.Sampler{Topo: t, Seed: 42}
	m, err := s.OffsetMatrix(runs)
	if err != nil {
		return err
	}
	var max int64
	for i := range m {
		for j := range m[i] {
			if m[i][j] > max {
				max = m[i][j]
			}
		}
	}
	fmt.Printf("%s — pairwise measured offsets, writer row → reader column (max %d ns)\n",
		t, max)
	// Downsample wide matrices to ~64 columns for terminal width.
	step := 1
	for len(m)/step > 64 {
		step++
	}
	for i := 0; i < len(m); i += step {
		for j := 0; j < len(m); j += step {
			v := m[i][j]
			if cell {
				fmt.Printf("%5d", v)
				continue
			}
			idx := int(float64(v) / float64(max) * float64(len(shades)-1))
			fmt.Printf("%c", shades[idx])
		}
		fmt.Println()
	}
	if step > 1 {
		fmt.Printf("(downsampled: each cell covers %dx%d core pairs)\n", step, step)
	}
	fmt.Println()
	return nil
}
