// Command ordo-bench regenerates the paper's evaluation: every table and
// figure of "A Scalable Ordering Primitive for Multicore Machines"
// (EuroSys'18), reproduced on simulated models of the paper's four
// machines (plus host-hardware calibration where meaningful).
//
// Usage:
//
//	ordo-bench                  # run everything at full fidelity
//	ordo-bench -exp fig13       # one experiment
//	ordo-bench -exp table1,fig1 # several
//	ordo-bench -quick           # fewer sweep points (CI-friendly)
//	ordo-bench -list            # list experiment ids
//	ordo-bench -monitor -health-json health.json
//	                            # run with background clock-health
//	                            # monitoring; dump the snapshot as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ordo/internal/bench"
	"ordo/internal/core"
	"ordo/internal/health"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick   = flag.Bool("quick", false, "fewer sweep points and shorter runs")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		monitor = flag.Bool("monitor", false,
			"calibrate the host and run a background clock-health monitor for the duration")
		monInterval = flag.Duration("monitor-interval", 2*time.Second,
			"recalibration cadence for -monitor")
		healthJSON = flag.String("health-json", "",
			"write the final clock-health snapshot as JSON to this file ('-' for stdout); implies -monitor")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	quality := bench.Full
	if *quick {
		quality = bench.Quick
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
					id, strings.Join(bench.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var finishHealth func()
	if *monitor || *healthJSON != "" {
		var err error
		finishHealth, err = startHealth(*monInterval, *healthJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "health monitor: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range selected {
		start := time.Now()
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		e.Run(os.Stdout, quality)
		fmt.Printf("---- %s done in %v ----\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if finishHealth != nil {
		finishHealth()
	}
}

// startHealth calibrates the host, starts a background health monitor plus
// a probe goroutine that keeps the hot-path counters live, and returns a
// function that stops both and emits the final snapshot.
func startHealth(interval time.Duration, jsonPath string) (func(), error) {
	o, b, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 200})
	if err != nil {
		return nil, err
	}
	fmt.Printf("host ORDO_BOUNDARY: %d ticks over %d CPUs; monitoring every %v\n\n",
		b.Global, b.CPUs, interval)

	stats := health.NewStats()
	m := health.NewMonitor(o, health.Options{
		Interval:    interval,
		Calibration: core.CalibrationOptions{Runs: 200},
		Stats:       stats,
	})
	m.Start()

	// The benchmarks run against simulated machine models, so exercise the
	// host primitive from a probe loop to populate hot-path counters.
	ins := health.Instrument(o, stats)
	probeStop := make(chan struct{})
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		for {
			select {
			case <-probeStop:
				return
			default:
				ins.Probe()
			}
		}
	}()

	return func() {
		close(probeStop)
		<-probeDone
		m.Stop()
		emitSnapshot(m.Snapshot(), jsonPath)
	}, nil
}

func emitSnapshot(snap health.Snapshot, jsonPath string) {
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "health snapshot: %v\n", err)
		return
	}
	buf = append(buf, '\n')
	switch jsonPath {
	case "", "-":
		fmt.Printf("==== clock health ====\n%s", buf)
	default:
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "health snapshot: %v\n", err)
			return
		}
		fmt.Printf("clock-health snapshot written to %s\n", jsonPath)
	}
}
