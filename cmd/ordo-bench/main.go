// Command ordo-bench regenerates the paper's evaluation: every table and
// figure of "A Scalable Ordering Primitive for Multicore Machines"
// (EuroSys'18), reproduced on simulated models of the paper's four
// machines (plus host-hardware calibration where meaningful).
//
// Usage:
//
//	ordo-bench                  # run everything at full fidelity
//	ordo-bench -exp fig13       # one experiment
//	ordo-bench -exp table1,fig1 # several
//	ordo-bench -quick           # fewer sweep points (CI-friendly)
//	ordo-bench -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ordo/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick = flag.Bool("quick", false, "fewer sweep points and shorter runs")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	quality := bench.Full
	if *quick {
		quality = bench.Quick
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
					id, strings.Join(bench.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		e.Run(os.Stdout, quality)
		fmt.Printf("---- %s done in %v ----\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
