// Command ordo-calibrate measures the ORDO_BOUNDARY of the host machine:
// it pins OS threads to CPU pairs (sched_setaffinity on Linux) and runs
// the paper's Figure 4 one-way-delay protocol across every pair, printing
// the per-pair offsets and the resulting global boundary.
//
// Usage:
//
//	ordo-calibrate                 # all pairs, 1000 runs each
//	ordo-calibrate -runs 200       # fewer protocol iterations
//	ordo-calibrate -stride 4       # sample every 4th CPU
//	ordo-calibrate -matrix         # print the pairwise offset matrix
//	ordo-calibrate -monitor-passes 5 -health-json -
//	                               # keep recalibrating and report health
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ordo/internal/affinity"
	"ordo/internal/core"
	"ordo/internal/health"
	"ordo/internal/tsc"
)

func main() {
	var (
		runs     = flag.Int("runs", 1000, "protocol iterations per direction per pair")
		stride   = flag.Int("stride", 1, "sample every Nth CPU")
		matrix   = flag.Bool("matrix", false, "print the full pairwise offset matrix (ns)")
		monPass  = flag.Int("monitor-passes", 0, "extra recalibration passes after the initial one")
		monEvery = flag.Duration("monitor-interval", time.Second, "delay between -monitor-passes")
		healthJS = flag.String("health-json", "",
			"write a clock-health snapshot as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	fmt.Printf("cpus: %d   pinning: %v   hardware counter: %v   counter freq: %.2f GHz\n",
		runtime.NumCPU(), affinity.Supported(), tsc.Supported(),
		float64(tsc.Frequency())/1e9)

	s := &core.HardwareSampler{AllowUnpinned: true}
	if *matrix {
		printMatrix(s, *runs, *stride)
	}

	start := time.Now()
	b, err := core.ComputeBoundary(s, core.CalibrationOptions{Runs: *runs, Stride: *stride})
	if err != nil {
		fmt.Fprintf(os.Stderr, "calibration failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ncalibrated in %v over %d CPUs (%d measurements)\n",
		time.Since(start).Round(time.Millisecond), b.CPUs, b.Pairs)
	fmt.Printf("min pairwise offset: %8d ticks  (%v)\n", b.Min, tsc.ToDuration(uint64(b.Min)))
	fmt.Printf("ORDO_BOUNDARY:       %8d ticks  (%v)\n", b.Global, tsc.ToDuration(uint64(b.Global)))

	o := core.New(core.Hardware, b.Global)
	t0 := o.GetTime()
	t1 := o.NewTime(t0)
	fmt.Printf("\nsanity: get_time=%d, new_time=%d (delta %v), cmp=%+d\n",
		t0, t1, tsc.ToDuration(uint64(t1-t0)), o.CmpTime(t1, t0))

	if *monPass > 0 || *healthJS != "" {
		runMonitor(o, s, *runs, *stride, *monPass, *monEvery, *healthJS)
	}
}

// runMonitor drives extra recalibration passes by hand, printing the
// boundary and drift estimate after each, then dumps the health snapshot.
func runMonitor(o *core.Ordo, s *core.HardwareSampler, runs, stride, passes int,
	every time.Duration, jsonPath string) {
	m := health.NewMonitor(o, health.Options{
		Sampler:     s,
		Calibration: core.CalibrationOptions{Runs: runs, Stride: stride},
	})
	for i := 0; i < passes; i++ {
		time.Sleep(every)
		if err := m.RunOnce(); err != nil {
			fmt.Fprintf(os.Stderr, "monitor pass %d: %v\n", i+1, err)
			continue
		}
		snap := m.Snapshot()
		fmt.Printf("pass %2d: boundary %8d ticks  widenings %d  anomalies %d  drift %+.1f ppm\n",
			i+1, snap.BoundaryTicks, snap.Widenings, snap.Anomalies, snap.DriftPPM)
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(m.Snapshot(), "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "health snapshot: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		if jsonPath == "-" {
			fmt.Printf("\n%s", buf)
			return
		}
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "health snapshot: %v\n", err)
			return
		}
		fmt.Printf("clock-health snapshot written to %s\n", jsonPath)
	}
}

func printMatrix(s *core.HardwareSampler, runs, stride int) {
	n := s.NumCPUs()
	fmt.Printf("\npairwise one-way offsets (ns), writer row -> reader column:\n%6s", "")
	for j := 0; j < n; j += stride {
		fmt.Printf(" %7d", j)
	}
	fmt.Println()
	for i := 0; i < n; i += stride {
		fmt.Printf("%6d", i)
		for j := 0; j < n; j += stride {
			if i == j {
				fmt.Printf(" %7s", ".")
				continue
			}
			d, err := s.MeasureOffset(i, j, runs)
			if err != nil {
				fmt.Printf(" %7s", "err")
				continue
			}
			fmt.Printf(" %7d", tsc.ToDuration(uint64(d)).Nanoseconds())
		}
		fmt.Println()
	}
}
