// Command ordo-tracectl fetches distributed-tracing spans from every node
// of an ordod cluster (admin /spans endpoints) and renders causally merged
// per-trace timelines plus a per-stage latency breakdown.
//
// The merge is interval-ordered (DESIGN.md §16): two spans are sequenced
// only when their Ordo uncertainty intervals [TS-Unc, TS+Unc] are disjoint;
// overlapping spans are printed in deterministic presentation order and
// flagged "~" for concurrent — the tool never invents an order the clocks
// cannot support.
//
// Usage:
//
//	ordo-tracectl -nodes 127.0.0.1:7422,127.0.0.1:7424            # all traces
//	ordo-tracectl -nodes ... -trace 00f3a9c1d2e4b586              # one trace
//	ordo-tracectl -nodes ... -require-stitched                    # CI gate
//
// -require-stitched exits 1 unless at least one trace carries a repl_ship
// span from one node AND a repl_apply span from a different node — the
// proof that a client write was followed across the replication link.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ordo/internal/hist"
	"ordo/internal/telemetry/span"
)

func main() {
	var (
		nodes    = flag.String("nodes", "", "comma-separated admin endpoints (host:port or http://host:port) to scrape /spans from")
		traceHex = flag.String("trace", "", "render only this trace (16 hex digits)")
		limit    = flag.Int("limit", 0, "per-node span fetch limit (0 = the node's whole ring)")
		maxShow  = flag.Int("max-traces", 8, "full timelines to render when no -trace is given")
		stitched = flag.Bool("require-stitched", false, "exit 1 unless some trace has ship and apply spans from different nodes")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-node HTTP timeout")
	)
	flag.Parse()
	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "ordo-tracectl: -nodes is required")
		os.Exit(2)
	}
	var trace span.TraceID
	if *traceHex != "" {
		v, err := strconv.ParseUint(*traceHex, 16, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ordo-tracectl: bad -trace %q: %v\n", *traceHex, err)
			os.Exit(2)
		}
		trace = span.TraceID(v)
	}

	client := &http.Client{Timeout: *timeout}
	var all []span.Span
	fetched := 0
	for _, node := range strings.Split(*nodes, ",") {
		node = strings.TrimSpace(node)
		if node == "" {
			continue
		}
		d, err := fetch(client, node, trace, *limit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ordo-tracectl: %s: %v\n", node, err)
			continue
		}
		fetched++
		fmt.Printf("node %-22s now=%dns unc=%dns spans=%d (dropped %d of %d)\n",
			d.Node, d.NowNS, d.UncNS, len(d.Spans), d.Dropped, d.Total)
		all = append(all, d.Spans...)
	}
	if fetched == 0 {
		fmt.Fprintln(os.Stderr, "ordo-tracectl: no node answered")
		os.Exit(1)
	}
	if len(all) == 0 {
		fmt.Println("no spans")
		if *stitched {
			fmt.Fprintln(os.Stderr, "ordo-tracectl: no stitched leader->follower trace found")
			os.Exit(1)
		}
		return
	}

	byTrace := map[span.TraceID][]span.Span{}
	for _, sp := range all {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	ids := make([]span.TraceID, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return earliest(byTrace[ids[i]]) < earliest(byTrace[ids[j]])
	})

	fmt.Printf("\n%d spans across %d traces\n", len(all), len(ids))
	shown := 0
	var stitchedID span.TraceID
	for _, id := range ids {
		spans := byTrace[id]
		if isStitched(spans) && stitchedID == 0 {
			stitchedID = id
		}
		if trace != 0 || shown < *maxShow {
			renderTimeline(id, spans)
			shown++
		}
	}
	if skipped := len(ids) - shown; skipped > 0 {
		fmt.Printf("\n(%d more traces; rerun with -trace <id> or -max-traces)\n", skipped)
	}

	renderBreakdown(all)

	if *stitched {
		if stitchedID == 0 {
			fmt.Fprintln(os.Stderr, "ordo-tracectl: no stitched leader->follower trace found")
			os.Exit(1)
		}
		fmt.Printf("\nstitched leader->follower trace: %s\n", stitchedID)
	}
}

// fetch pulls one node's /spans document.
func fetch(c *http.Client, node string, trace span.TraceID, limit int) (*span.Dump, error) {
	base := node
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	q := url.Values{}
	if trace != 0 {
		q.Set("trace", trace.String())
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	u := base + "/spans"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := c.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /spans: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var d span.Dump
	if err := json.Unmarshal(body, &d); err != nil {
		return nil, fmt.Errorf("GET /spans: %w", err)
	}
	return &d, nil
}

func earliest(spans []span.Span) uint64 {
	lo := ^uint64(0)
	for i := range spans {
		if spans[i].TS < lo {
			lo = spans[i].TS
		}
	}
	return lo
}

// isStitched reports whether one trace proves the replication link: a ship
// span from one node and an apply span from a different one.
func isStitched(spans []span.Span) bool {
	for i := range spans {
		if spans[i].Stage != span.StageShip {
			continue
		}
		for j := range spans {
			if spans[j].Stage == span.StageApply && spans[j].Node != spans[i].Node {
				return true
			}
		}
	}
	return false
}

// renderTimeline prints one trace's causally merged timeline. Offsets are
// relative to the trace's earliest span; a leading "~" marks a span whose
// interval overlaps its predecessor's — concurrent, not ordered.
func renderTimeline(id span.TraceID, spans []span.Span) {
	merged := span.Merge(spans)
	base := earliest(spans)
	fmt.Printf("\ntrace %s (%d spans):\n", id, len(merged))
	for i := range merged {
		m := &merged[i]
		mark := " "
		if m.Concurrent {
			mark = "~"
		}
		lane := ""
		if m.Lane >= 0 {
			lane = fmt.Sprintf(" lane=%d", m.Lane)
		}
		dur := ""
		if m.Dur > 0 {
			dur = fmt.Sprintf(" dur=%v", time.Duration(m.Dur))
		}
		fmt.Printf("  %s +%-12v ±%-10v %-11s node=%s epoch=%d%s%s\n",
			mark, time.Duration(m.TS-base), time.Duration(m.Unc), m.Stage, m.Node, m.Epoch, lane, dur)
	}
}

// renderBreakdown aggregates stage durations (for stages with an extent)
// across every fetched span and prints p50/p99/max per stage.
func renderBreakdown(all []span.Span) {
	hs := make([]hist.H, len(span.StageNames()))
	for i := range all {
		if all[i].Dur > 0 {
			hs[all[i].Stage].Record(all[i].Dur)
		}
	}
	fmt.Printf("\nper-stage latency breakdown:\n")
	fmt.Printf("  %-11s %8s %12s %12s %12s\n", "stage", "count", "p50", "p99", "max")
	for st, name := range span.StageNames() {
		h := &hs[st]
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-11s %8d %12v %12v %12v\n", name, h.Count(),
			time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.99)), time.Duration(h.Max()))
	}
}
