// Command ordo-loadgen drives an ordod server with a YCSB-shaped workload
// over the wire protocol: a pool of closed-loop client connections, each
// pipelining a window of requests, measuring throughput and per-op-type
// latency quantiles (p50/p99/p999) from the client side of the socket.
//
// Usage:
//
//	ordo-loadgen -addr 127.0.0.1:7421 -conns 4 -ops 10000
//	ordo-loadgen -seconds 2 -reads 0.5 -theta 0.9
//	ordo-loadgen -txn-ops 2            # TXN frames of 2 ops (paper §6.5 shape)
//
// CONFLICT and BUSY responses are legitimate protocol answers: the op is
// re-issued and counted separately. Any ERR status, decode failure or
// transport error is a protocol error; the process exits 1 if any occur.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"ordo/internal/db/ycsb"
	"ordo/internal/hist"
	"ordo/internal/wire"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7421", "ordod address")
		conns   = flag.Int("conns", 4, "client connections (one goroutine each)")
		window  = flag.Int("pipeline", 32, "pipelined requests in flight per connection")
		ops     = flag.Int("ops", 10000, "ops per connection (ignored when -seconds > 0)")
		seconds = flag.Float64("seconds", 0, "run duration; overrides -ops when positive")
		records = flag.Int("records", 4096, "keyspace size (preloaded before the run)")
		reads   = flag.Float64("reads", 0.5, "fraction of ops that are GETs")
		theta   = flag.Float64("theta", 0, "Zipfian skew (0 = uniform)")
		txnOps  = flag.Int("txn-ops", 0, "when positive, send TXN frames of this many ops instead of simple ops")
		seed    = flag.Int64("seed", 1, "base RNG seed (connection i uses seed+i)")
		dialFor = flag.Duration("dial-for", 5*time.Second, "keep retrying the first dial for this long")
		opTO    = flag.Duration("op-timeout", 10*time.Second,
			"per-I/O deadline; a read or flush exceeding it fails the run instead of hanging (0 disables)")
		report = flag.Duration("report-interval", 0,
			"print ops/s and latency quantiles for each interval while running (0 disables)")
	)
	flag.Parse()

	if err := run(*addr, *conns, *window, *ops, *seconds, *records,
		*reads, *theta, *txnOps, *seed, *dialFor, *opTO, *report); err != nil {
		fmt.Fprintf(os.Stderr, "ordo-loadgen: %v\n", err)
		os.Exit(1)
	}
}

// opClasses index the per-type histograms.
const (
	clGet = iota
	clPut
	clTxn
	nClasses
)

var classNames = [nClasses]string{"GET", "PUT", "TXN"}

// workerResult is one connection's tallies. The hists and counters belong
// to the worker alone until wg.Wait; only tick is shared with the
// interval reporter, under mu.
type workerResult struct {
	hists     [nClasses]hist.H
	done      uint64 // ops completed OK
	conflicts uint64 // CONFLICT answers (re-issued)
	busy      uint64 // BUSY answers (re-issued)
	err       error

	// reporting turns on tick recording; set once before the worker starts.
	reporting bool
	mu        sync.Mutex
	tick      hist.H // completed ops since the reporter's last drain
}

func run(addr string, conns, window, ops int, seconds float64, records int,
	reads, theta float64, txnOps int, seed int64, dialFor, opTO, report time.Duration) error {
	if conns <= 0 || window <= 0 || records <= 0 {
		return fmt.Errorf("-conns, -pipeline and -records must be positive")
	}
	cfg := ycsb.Config{Records: records, ReadRatio: reads, Theta: theta}
	if _, err := ycsb.NewGen(cfg, 0); err != nil {
		return err
	}

	// Wait for the server, then preload the keyspace on one connection.
	nc, err := dialRetry(addr, dialFor)
	if err != nil {
		return err
	}
	if err := preload(wire.NewConn(deadlineConn{nc, opTO}), records, window); err != nil {
		nc.Close()
		return fmt.Errorf("preload: %w", err)
	}
	nc.Close()

	var deadline time.Time
	if seconds > 0 {
		deadline = time.Now().Add(time.Duration(seconds * float64(time.Second)))
	}

	results := make([]workerResult, conns)
	for i := range results {
		results[i].reporting = report > 0
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen, err := ycsb.NewGen(cfg, seed+int64(i))
			if err != nil {
				results[i].err = err
				return
			}
			results[i].err = runConn(addr, gen, &results[i], window, ops, deadline, txnOps, opTO)
		}(i)
	}
	var stopReport chan struct{}
	if report > 0 {
		stopReport = make(chan struct{})
		go reporter(results, report, stopReport)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if stopReport != nil {
		close(stopReport)
	}

	// Aggregate.
	var total workerResult
	for i := range results {
		if results[i].err != nil && total.err == nil {
			total.err = fmt.Errorf("conn %d: %w", i, results[i].err)
		}
		total.done += results[i].done
		total.conflicts += results[i].conflicts
		total.busy += results[i].busy
		for c := 0; c < nClasses; c++ {
			total.hists[c].Merge(&results[i].hists[c])
		}
	}

	fmt.Printf("ran %d ops on %d conns (pipeline %d) in %v: %.0f ops/s\n",
		total.done, conns, window, elapsed.Round(time.Millisecond),
		float64(total.done)/elapsed.Seconds())
	fmt.Printf("re-issued: %d conflicts, %d busy\n", total.conflicts, total.busy)
	for c := 0; c < nClasses; c++ {
		if total.hists[c].Count() == 0 {
			continue
		}
		fmt.Printf("%-4s %s\n", classNames[c], total.hists[c].String())
	}

	// Close with the server's own view of the run.
	if nc, err := dialRetry(addr, dialFor); err == nil {
		c := wire.NewConn(deadlineConn{nc, opTO})
		if resp, err := c.Do(&wire.Request{Op: wire.OpStats}); err == nil && resp.Stats != nil {
			s := resp.Stats
			fmt.Printf("server [%s]: commits=%d aborts=%d batches=%d batched_ops=%d shed=%d clock_cmps=%d uncertain=%d\n",
				s.Protocol, s.Commits, s.Aborts, s.Batches, s.BatchedOps,
				s.Busy, s.ClockCmps, s.ClockUncertain)
		}
		nc.Close()
	}

	if total.err != nil {
		return total.err
	}
	if total.done == 0 {
		return fmt.Errorf("no ops completed")
	}
	return nil
}

// reporter prints one progress line per interval: throughput and latency
// quantiles over the ops completed since the previous line, from a merge
// of every worker's tick histogram (drained and reset under its lock).
func reporter(results []workerResult, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			var h hist.H
			for i := range results {
				r := &results[i]
				r.mu.Lock()
				h.Merge(&r.tick)
				r.tick = hist.H{}
				r.mu.Unlock()
			}
			dt := now.Sub(last).Seconds()
			last = now
			if h.Count() == 0 || dt <= 0 {
				fmt.Printf("interval: 0 ops\n")
				continue
			}
			fmt.Printf("interval: %.0f ops/s p50=%v p99=%v p999=%v\n",
				float64(h.Count())/dt,
				time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
				time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
				time.Duration(h.Quantile(0.999)).Round(time.Microsecond))
		}
	}
}

// deadlineConn arms a fresh deadline before every Read and Write, turning
// -op-timeout into a per-I/O bound: any single blocking syscall past it
// surfaces a net timeout error instead of hanging the connection forever
// (e.g. against a wedged or drop-everything server).
type deadlineConn struct {
	net.Conn
	d time.Duration
}

func (c deadlineConn) Read(p []byte) (int, error) {
	if c.d > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(c.d))
	}
	return c.Conn.Read(p)
}

func (c deadlineConn) Write(p []byte) (int, error) {
	if c.d > 0 {
		c.Conn.SetWriteDeadline(time.Now().Add(c.d))
	}
	return c.Conn.Write(p)
}

// dialRetry dials addr, retrying while the server comes up.
func dialRetry(addr string, dialFor time.Duration) (net.Conn, error) {
	var lastErr error
	stop := time.Now().Add(dialFor)
	for {
		nc, err := net.Dial("tcp", addr)
		if err == nil {
			return nc, nil
		}
		lastErr = err
		if time.Now().After(stop) {
			return nil, fmt.Errorf("dial %s: %w", addr, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// preload pipelines INSERTs for the whole keyspace; DUPLICATE answers are
// fine (another loadgen or an earlier run already loaded the row).
func preload(c *wire.Conn, records, window int) error {
	inFlight := 0
	next := 0
	answered := 0
	for answered < records {
		for inFlight < window && next < records {
			vals := make([]uint64, ycsb.Cols)
			for j := range vals {
				vals[j] = uint64(next)
			}
			if err := c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: uint64(next), Vals: vals}); err != nil {
				return err
			}
			next++
			inFlight++
		}
		if err := c.Flush(); err != nil {
			return err
		}
		resp, err := c.ReadResponse()
		if err != nil {
			return err
		}
		if resp.Status != wire.StatusOK && resp.Status != wire.StatusDuplicate {
			return fmt.Errorf("key %d: %v", answered, resp.Status)
		}
		answered++
		inFlight--
	}
	return nil
}

// pendingOp is one in-flight request with its issue time and class.
type pendingOp struct {
	req   wire.Request
	class int
	sent  time.Time
}

// runConn is one closed-loop connection: keep the pipeline full, read one
// response, classify it, refill.
func runConn(addr string, gen *ycsb.Gen, res *workerResult,
	window, ops int, deadline time.Time, txnOps int, opTO time.Duration) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	c := wire.NewConn(deadlineConn{nc, opTO})

	mkReq := func() (wire.Request, int) {
		if txnOps > 0 {
			sub := make([]wire.Request, txnOps)
			for i := range sub {
				sub[i] = simpleReq(gen)
			}
			return wire.Request{Op: wire.OpTxn, Ops: sub}, clTxn
		}
		r := simpleReq(gen)
		if r.Op == wire.OpGet {
			return r, clGet
		}
		return r, clPut
	}

	timed := !deadline.IsZero()
	stopIssuing := func(issued int) bool {
		if timed {
			return time.Now().After(deadline)
		}
		return issued >= ops
	}

	var inFlight []pendingOp
	issued := 0
	send := func(p pendingOp) error {
		if err := c.WriteRequest(&p.req); err != nil {
			return err
		}
		p.sent = time.Now()
		inFlight = append(inFlight, p)
		return nil
	}

	for {
		for len(inFlight) < window && !stopIssuing(issued) {
			req, class := mkReq()
			if err := send(pendingOp{req: req, class: class}); err != nil {
				return err
			}
			issued++
		}
		if len(inFlight) == 0 {
			return nil // issued everything and drained
		}
		if err := c.Flush(); err != nil {
			return err
		}
		resp, err := c.ReadResponse()
		if err != nil {
			return fmt.Errorf("after %d ops: %w", res.done, err)
		}
		p := inFlight[0]
		inFlight = inFlight[1:]
		switch resp.Status {
		case wire.StatusOK:
			d := time.Since(p.sent)
			res.hists[p.class].RecordDuration(d)
			if res.reporting {
				res.mu.Lock()
				res.tick.RecordDuration(d)
				res.mu.Unlock()
			}
			res.done++
		case wire.StatusConflict:
			res.conflicts++
			if err := send(p); err != nil {
				return err
			}
		case wire.StatusBusy:
			res.busy++
			if err := send(p); err != nil {
				return err
			}
		default:
			return fmt.Errorf("op %v answered %v", p.req.Op, resp.Status)
		}
	}
}

// simpleReq draws one GET or PUT from the generator.
func simpleReq(gen *ycsb.Gen) wire.Request {
	k := gen.Key()
	if gen.IsRead() {
		return wire.Request{Op: wire.OpGet, Key: k}
	}
	vals := make([]uint64, ycsb.Cols)
	for j := range vals {
		vals[j] = k
	}
	return wire.Request{Op: wire.OpPut, Key: k, Vals: vals}
}
