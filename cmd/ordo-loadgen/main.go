// Command ordo-loadgen drives an ordod server with a YCSB-shaped workload
// over the wire protocol: a pool of closed-loop client connections, each
// pipelining a window of requests, measuring throughput and per-op-type
// latency quantiles (p50/p99/p999) from the client side of the socket.
// The measurement engine lives in internal/loadgen, shared with
// cmd/ordo-benchrun.
//
// Usage:
//
//	ordo-loadgen -addr 127.0.0.1:7421 -conns 4 -ops 10000
//	ordo-loadgen -seconds 2 -reads 0.5 -theta 0.9
//	ordo-loadgen -txn-ops 2            # TXN frames of 2 ops (paper §6.5 shape)
//	ordo-loadgen -replicas 127.0.0.1:7422    # probe follower read-your-writes
//	ordo-loadgen -sweep -replicas 127.0.0.1:7422  # leader/follower checksum compare
//
// With -replicas, each listed follower gets a dedicated prober alongside
// the bulk load: write on the leader, read the ack's durability token back
// through the follower's GET_AT, counting NOT_YET answers and staleness
// violations and reporting the ack-to-visible p99. Any staleness violation
// exits 1.
//
// With -sweep, no load runs: every key in [0, records) is read from -addr
// and digested; each -replicas follower is then re-swept until its digest
// matches (bounded by -sweep-wait), so a converged pair exits 0.
//
// CONFLICT and BUSY responses are legitimate protocol answers: the op is
// re-issued and counted separately. Any ERR status, decode failure or
// transport error is a protocol error; the process exits 1 if any occur.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ordo/internal/loadgen"
	"ordo/internal/telemetry/span"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7421", "ordod address")
		conns   = flag.Int("conns", 4, "client connections (one goroutine each)")
		window  = flag.Int("pipeline", 32, "pipelined requests in flight per connection")
		ops     = flag.Int("ops", 10000, "ops per connection (ignored when -seconds > 0)")
		seconds = flag.Float64("seconds", 0, "run duration; overrides -ops when positive")
		records = flag.Int("records", 4096, "keyspace size (preloaded before the run)")
		reads   = flag.Float64("reads", 0.5, "fraction of ops that are GETs")
		theta   = flag.Float64("theta", 0, "Zipfian skew (0 = uniform)")
		txnOps  = flag.Int("txn-ops", 0, "when positive, send TXN frames of this many ops instead of simple ops")
		seed    = flag.Int64("seed", 1, "base RNG seed (connection i uses seed+i)")
		dialFor = flag.Duration("dial-for", 5*time.Second, "keep retrying the first dial for this long")
		opTO    = flag.Duration("op-timeout", 10*time.Second,
			"per-I/O deadline; a read or flush exceeding it fails the run instead of hanging (0 disables)")
		report = flag.Duration("report-interval", 0,
			"print ops/s and latency quantiles for each interval while running (0 disables)")
		replicas = flag.String("replicas", "",
			"comma-separated follower addresses to probe (read fan-out with a read-your-writes check)")
		sweep = flag.Bool("sweep", false,
			"no load: checksum every key in [0, records) on -addr, then verify each -replicas follower converges to the same digest")
		sweepWait = flag.Duration("sweep-wait", 30*time.Second,
			"how long -sweep keeps re-reading a lagging follower before declaring divergence")
		failover = flag.Bool("failover", false,
			"failover mode: per-key monotone writes through the resilient client against -endpoints, then a read-back sweep asserting acked ≤ recovered ≤ issued")
		endpoints = flag.String("endpoints", "",
			"comma-separated client-facing addresses of every cluster node (failover mode)")
		workers  = flag.Int("workers", 4, "failover-mode writer goroutines")
		retryFor = flag.Duration("retry-for", 15*time.Second,
			"failover-mode per-op retry budget; must exceed the cluster's failover time")
		traceSample = flag.Float64("trace-sample", 0,
			"fraction of requests stamped with a client-minted trace ID (server force-samples them; 0 disables)")
		traceScrape = flag.String("trace-scrape", "",
			"comma-separated admin endpoints whose /spans are scraped after the run for the per-stage latency breakdown")
	)
	flag.Parse()

	if *failover {
		if err := runFailover(*endpoints, *workers, *records, *seconds, *opTO, *retryFor); err != nil {
			fmt.Fprintf(os.Stderr, "ordo-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var replicaAddrs []string
	if *replicas != "" {
		for _, a := range strings.Split(*replicas, ",") {
			if a = strings.TrimSpace(a); a != "" {
				replicaAddrs = append(replicaAddrs, a)
			}
		}
	}
	if *sweep {
		if err := runSweep(*addr, replicaAddrs, *records, *window, *dialFor, *opTO, *sweepWait); err != nil {
			fmt.Fprintf(os.Stderr, "ordo-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := loadgen.Config{
		Addr:        *addr,
		Conns:       *conns,
		Window:      *window,
		Ops:         *ops,
		Seconds:     *seconds,
		Records:     *records,
		Reads:       *reads,
		Theta:       *theta,
		TxnOps:      *txnOps,
		Seed:        *seed,
		DialFor:     *dialFor,
		OpTimeout:   *opTO,
		ReportEvery: *report,
		ReportTo:    os.Stdout,
		Replicas:    replicaAddrs,
		TraceSample: *traceSample,
	}
	if *traceScrape != "" {
		for _, a := range strings.Split(*traceScrape, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.TraceScrape = append(cfg.TraceScrape, a)
			}
		}
	}
	res, err := loadgen.Run(cfg)
	if res != nil {
		printResult(cfg, res)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ordo-loadgen: %v\n", err)
		os.Exit(1)
	}
	if res != nil {
		for i := range res.Replicas {
			if res.Replicas[i].Stale > 0 {
				fmt.Fprintf(os.Stderr, "ordo-loadgen: replica %s served %d stale read(s)\n",
					res.Replicas[i].Addr, res.Replicas[i].Stale)
				os.Exit(1)
			}
		}
	}
}

// runFailover runs the failover harness: monotone per-key writes through
// the resilient client, a mid-run leader kill courtesy of the operator,
// and a read-back sweep that fails the process if any acknowledged write
// was lost.
func runFailover(endpoints string, workers, records int, seconds float64, opTO, retryFor time.Duration) error {
	var eps []string
	for _, a := range strings.Split(endpoints, ",") {
		if a = strings.TrimSpace(a); a != "" {
			eps = append(eps, a)
		}
	}
	if len(eps) == 0 {
		return fmt.Errorf("-failover requires -endpoints")
	}
	if seconds <= 0 {
		seconds = 10
	}
	res, err := loadgen.RunFailover(loadgen.FailoverConfig{
		Endpoints: eps,
		Workers:   workers,
		Keys:      records,
		Seconds:   seconds,
		OpTimeout: opTO,
		RetryFor:  retryFor,
		ReportTo:  os.Stdout,
	})
	if res != nil {
		fmt.Printf("failover: acked=%d writes in %v, max ack gap %v\n",
			res.Acked, res.Elapsed.Round(time.Millisecond), res.MaxAckGap.Round(time.Millisecond))
		fmt.Printf("failover: not_leader_retries=%d redirects=%d reconnects=%d uncertain=%d\n",
			res.Client.NotLeaderRetries, res.Client.Redirects, res.Client.Reconnects, res.Client.Uncertain)
		fmt.Printf("failover: swept=%d violations=%d\n", res.SweptKeys, res.Violations)
	}
	return err
}

// runSweep digests the key range on the primary, then requires every
// follower to converge to the same digest within wait.
func runSweep(addr string, replicas []string, records, window int, dialFor, opTO, wait time.Duration) error {
	lead, err := loadgen.Sweep(addr, records, window, dialFor, opTO)
	if err != nil {
		return fmt.Errorf("sweep %s: %w", addr, err)
	}
	fmt.Printf("sweep %s: records=%d found=%d checksum=%016x\n", addr, records, lead.Found, lead.Checksum)
	for _, r := range replicas {
		deadline := time.Now().Add(wait)
		for {
			got, err := loadgen.Sweep(r, records, window, dialFor, opTO)
			if err != nil {
				return fmt.Errorf("sweep %s: %w", r, err)
			}
			if got == lead {
				fmt.Printf("sweep %s: records=%d found=%d checksum=%016x (match)\n", r, records, got.Found, got.Checksum)
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("sweep %s: diverged after %v: found=%d checksum=%016x, want found=%d checksum=%016x",
					r, wait, got.Found, got.Checksum, lead.Found, lead.Checksum)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// printResult renders the run summary: aggregate throughput, re-issue
// counts, per-class latency lines, and the server's own counters.
func printResult(cfg loadgen.Config, res *loadgen.Result) {
	fmt.Printf("ran %d ops on %d conns (pipeline %d) in %v: %.0f ops/s\n",
		res.Done, cfg.Conns, cfg.Window, res.Elapsed.Round(time.Millisecond),
		res.OpsPerSec())
	fmt.Printf("re-issued: %d conflicts, %d busy\n", res.Conflicts, res.Busy)
	for c := 0; c < loadgen.NClasses; c++ {
		if res.Hists[c].Count() == 0 {
			continue
		}
		fmt.Printf("%-4s %s\n", loadgen.ClassNames[c], res.Hists[c].String())
	}
	if s := res.Server; s != nil {
		fmt.Printf("server [%s]: commits=%d aborts=%d batches=%d batched_ops=%d shed=%d clock_cmps=%d uncertain=%d\n",
			s.Protocol, s.Commits, s.Aborts, s.Batches, s.BatchedOps,
			s.Busy, s.ClockCmps, s.ClockUncertain)
	}
	if cfg.TraceSample > 0 {
		fmt.Printf("traced: %d requests (sample %g)\n", res.Traced, cfg.TraceSample)
	}
	if res.Stages != nil {
		fmt.Printf("per-stage breakdown (server-side spans):\n")
		for st, name := range span.StageNames() {
			h := &res.Stages[st]
			if h.Count() == 0 {
				continue
			}
			fmt.Printf("  %-11s n=%-7d p50=%-10v p99=%v\n", name, h.Count(),
				time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
				time.Duration(h.Quantile(0.99)).Round(time.Microsecond))
		}
	}
	for i := range res.Replicas {
		r := &res.Replicas[i]
		fmt.Printf("replica %s: probes=%d not_yet=%d stale=%d", r.Addr, r.Probes, r.NotYet, r.Stale)
		// Quantiles from a handful of probes are noise dressed up as
		// precision (p99 of 3 samples is just the max), so below the
		// sample floor report only the count — suppressed, not zero.
		if n := r.Visibility.Count(); n >= minVisibilitySamples {
			fmt.Printf(" visible n=%d p50=%v p99=%v", n,
				time.Duration(r.Visibility.Quantile(0.5)).Round(time.Microsecond),
				time.Duration(r.Visibility.Quantile(0.99)).Round(time.Microsecond))
		} else if n > 0 {
			fmt.Printf(" visible n=%d (quantiles suppressed below %d samples)",
				n, minVisibilitySamples)
		}
		fmt.Println()
	}
}

// minVisibilitySamples is the floor below which ack-to-visible quantiles
// are suppressed rather than reported from too little data.
const minVisibilitySamples = 100
