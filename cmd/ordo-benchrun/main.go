// Command ordo-benchrun is the reproducible end-to-end benchmark harness:
// it boots an ordod server in-process, drives it with the shared
// internal/loadgen client pool across a fixed scenario grid, measures the
// allocation microbenches for the serving hot paths, and emits one
// schema-versioned benchjson file. A compare subcommand diffs two such
// files against regression thresholds and exits non-zero past them.
//
// Usage:
//
//	ordo-benchrun run -out BENCH_6.json -seconds 1 -seed 1
//	ordo-benchrun compare BENCH_6.json new.json
//
// The scenario grid is {read-heavy, write-heavy} x {wal=off, wal=batched}
// x a -conns list x a -shards list, each cell a freshly booted server on a
// loopback ephemeral port with a freshly preloaded keyspace — so a run's
// numbers depend only on the machine, the seed, and the code.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"ordo/internal/benchjson"
	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/db/ycsb"
	"ordo/internal/loadgen"
	"ordo/internal/server"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ordo-benchrun: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  ordo-benchrun run [-out FILE] [-seconds N] [-conns LIST] [-shards LIST] [-protocol P] [-seed N]
  ordo-benchrun compare BASE.json CURRENT.json [-max-ops-drop F] [-max-p99-grow F] [-max-alloc-grow F]
`)
}

// mix is one workload shape of the grid.
type mix struct {
	name  string
	reads float64
}

var mixes = []mix{
	{"read-heavy", 0.95},
	{"write-heavy", 0.20},
}

var walModes = []string{"off", "batched"}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		out     = fs.String("out", "BENCH.json", "output file")
		seconds = fs.Float64("seconds", 1.0, "measured duration per scenario")
		connsCS = fs.String("conns", "1,4", "comma-separated connection counts")
		window  = fs.Int("pipeline", 32, "pipelined requests in flight per connection")
		records = fs.Int("records", 4096, "keyspace size per scenario")
		theta    = fs.Float64("theta", 0, "Zipfian skew (0 = uniform)")
		proto    = fs.String("protocol", "OCC", "engine protocol for every scenario")
		seed     = fs.Int64("seed", 1, "base RNG seed (connection i uses seed+i)")
		shardsCS = fs.String("shards", "1", "comma-separated single-writer lane counts (adds a shards axis to the grid)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	connCounts, err := parseConns(*connsCS)
	if err != nil {
		return err
	}
	shardCounts, err := parseConns(*shardsCS)
	if err != nil {
		return err
	}
	p, err := db.ParseProtocol(*proto)
	if err != nil {
		return err
	}

	f := &benchjson.File{
		Schema: benchjson.SchemaVersion,
		Meta: benchjson.Meta{
			CreatedBy:   "ordo-benchrun",
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			GitRev:      gitRev(),
			Seed:        *seed,
			DurationSec: *seconds,
		},
	}

	for _, m := range mixes {
		for _, walMode := range walModes {
			for _, conns := range connCounts {
				for _, shards := range shardCounts {
					sc, err := runScenario(p, m, walMode, conns, shards, *window, *records, *theta, *seconds, *seed)
					if err != nil {
						return fmt.Errorf("%s: %w", sc.Name, err)
					}
					fmt.Printf("%-34s %10.0f ops/s  p50=%-9v p99=%-9v p999=%v\n",
						sc.Name, sc.OpsPerSec,
						time.Duration(sc.P50Ns).Round(time.Microsecond),
						time.Duration(sc.P99Ns).Round(time.Microsecond),
						time.Duration(sc.P999Ns).Round(time.Microsecond))
					f.Scenarios = append(f.Scenarios, sc)
				}
			}
		}
	}

	f.Micro = runMicros()
	for _, mi := range f.Micro {
		fmt.Printf("%-34s %10.2f allocs/op\n", mi.Name, mi.AllocsPerOp)
	}

	if err := benchjson.Write(*out, f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d scenarios, %d micros)\n", *out, len(f.Scenarios), len(f.Micro))
	return nil
}

func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-conns: bad count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runScenario boots one fresh server, drives one measured run against it,
// and tears everything down.
func runScenario(p db.Protocol, m mix, walMode string, conns, shards, window, records int,
	theta, seconds float64, seed int64) (benchjson.Scenario, error) {
	// The "/shards=N" suffix appears only above one lane, so pre-shard
	// baseline files keep matching the unsharded cells by name.
	name := fmt.Sprintf("%s/wal=%s/conns=%d", m.name, walMode, conns)
	if shards > 1 {
		name += fmt.Sprintf("/shards=%d", shards)
	}
	sc := benchjson.Scenario{
		Name:     name,
		Protocol: p.String(),
		WAL:      walMode,
		Conns:    conns,
		Shards:   shards,
		Window:   window,
		Records:  records,
		Reads:    m.reads,
		Theta:    theta,
	}

	// An Ordo-timestamped protocol needs a calibrated hardware clock; the
	// default OCC grid does not, keeping the harness runnable on machines
	// without invariant-TSC guarantees.
	var ordo *core.Ordo
	if p == db.OCCOrdo || p == db.HekatonOrdo {
		var err error
		ordo, _, err = core.CalibrateHardware(core.CalibrationOptions{Runs: 50})
		if err != nil {
			return sc, fmt.Errorf("calibration: %w", err)
		}
	}
	engine, err := db.New(p, ycsb.Schema(), ordo)
	if err != nil {
		return sc, err
	}

	cfg := server.Config{DB: engine, Schema: ycsb.Schema(), Shards: shards, Ordo: ordo}
	var closeWAL func()
	if walMode != "off" {
		dir, err := os.MkdirTemp("", "ordo-benchrun-wal-")
		if err != nil {
			return sc, err
		}
		sync := wal.SyncEachWrite
		if walMode == "batched" {
			sync = wal.SyncBatched
		}
		dev, err := wal.OpenFile(dir, wal.FileConfig{Sync: sync})
		if err != nil {
			os.RemoveAll(dir)
			return sc, err
		}
		cfg.WAL = wal.New(dev, nil)
		closeWAL = func() {
			dev.Close()
			os.RemoveAll(dir)
		}
	}

	srv, err := server.New(cfg)
	if err != nil {
		if closeWAL != nil {
			closeWAL()
		}
		return sc, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if closeWAL != nil {
			closeWAL()
		}
		return sc, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	res, runErr := loadgen.Run(loadgen.Config{
		Addr:      ln.Addr().String(),
		Conns:     conns,
		Window:    window,
		Seconds:   seconds,
		Records:   records,
		Reads:     m.reads,
		Theta:     theta,
		Seed:      seed,
		DialFor:   5 * time.Second,
		OpTimeout: 30 * time.Second,
	})

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	shutErr := srv.Shutdown(sctx)
	cancel()
	serveErr := <-serveDone
	if closeWAL != nil {
		closeWAL()
	}
	if runErr != nil {
		return sc, runErr
	}
	if shutErr != nil {
		return sc, fmt.Errorf("shutdown: %w", shutErr)
	}
	if serveErr != nil {
		return sc, fmt.Errorf("serve: %w", serveErr)
	}

	overall := res.Overall()
	sc.Ops = res.Done
	sc.Conflicts = res.Conflicts
	sc.Busy = res.Busy
	sc.ElapsedSec = res.Elapsed.Seconds()
	sc.OpsPerSec = res.OpsPerSec()
	sc.P50Ns = overall.Quantile(0.5)
	sc.P99Ns = overall.Quantile(0.99)
	sc.P999Ns = overall.Quantile(0.999)
	return sc, nil
}

// runMicros measures allocs/op on the serving hot paths with
// testing.AllocsPerRun — the same quantities the alloc-gate tests assert
// are zero, recorded here so a regression shows up in the committed
// numbers too.
func runMicros() []benchjson.Micro {
	req := wire.Request{Op: wire.OpPut, Table: 0, Key: 123456,
		Vals: []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	resp := wire.Response{Kind: wire.RespRow, Status: wire.StatusOK,
		Row: []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}

	var encBuf []byte
	encReq := testing.AllocsPerRun(2000, func() {
		p, err := wire.AppendRequest(encBuf[:0], &req)
		if err != nil {
			panic(err)
		}
		encBuf = p
	})

	var respBuf []byte
	encResp := testing.AllocsPerRun(2000, func() {
		p, err := wire.AppendResponse(respBuf[:0], &resp)
		if err != nil {
			panic(err)
		}
		respBuf = p
	})

	payload, err := wire.AppendRequest(nil, &req)
	if err != nil {
		panic(err)
	}
	var arena wire.Arena
	decReq := testing.AllocsPerRun(2000, func() {
		arena.Reset()
		if _, err := wire.DecodeRequestArena(payload, &arena); err != nil {
			panic(err)
		}
	})

	redoOps := []*wire.Request{&req}
	var redoBuf []byte
	encRedo := testing.AllocsPerRun(2000, func() {
		p, err := server.AppendRedo(redoBuf[:0], redoOps)
		if err != nil {
			panic(err)
		}
		redoBuf = p
	})

	return []benchjson.Micro{
		{Name: "wire_encode_request", AllocsPerOp: encReq},
		{Name: "wire_encode_response", AllocsPerOp: encResp},
		{Name: "wire_decode_request_arena", AllocsPerOp: decReq},
		{Name: "server_redo_encode", AllocsPerOp: encRedo},
	}
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var (
		maxOpsDrop   = fs.Float64("max-ops-drop", 0.40, "tolerated fractional ops/s drop per scenario")
		maxP99Grow   = fs.Float64("max-p99-grow", 1.00, "tolerated fractional p99 growth per scenario")
		maxAllocGrow = fs.Float64("max-alloc-grow", 0.5, "tolerated absolute allocs/op growth per micro")
	)
	// Accept "compare base cur [flags]" and "compare [flags] base cur".
	var paths []string
	rest := args
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		paths = append(paths, rest[0])
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	paths = append(paths, fs.Args()...)
	if len(paths) != 2 {
		return fmt.Errorf("compare needs exactly two files, got %d", len(paths))
	}

	base, err := benchjson.Load(paths[0])
	if err != nil {
		return err
	}
	cur, err := benchjson.Load(paths[1])
	if err != nil {
		return err
	}
	r := benchjson.Compare(base, cur, benchjson.Thresholds{
		MaxOpsDrop:   *maxOpsDrop,
		MaxP99Grow:   *maxP99Grow,
		MaxAllocGrow: *maxAllocGrow,
	})
	for _, line := range r.Lines {
		fmt.Println(line)
	}
	if !r.OK() {
		return fmt.Errorf("%d regression(s) past thresholds", len(r.Violations))
	}
	fmt.Printf("compare: %s vs %s within thresholds\n", paths[0], paths[1])
	return nil
}

// gitRev pulls the VCS revision the binary was built from, when the Go
// toolchain stamped one.
func gitRev() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", ""
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	return "unknown"
}
