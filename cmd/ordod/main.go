// Command ordod serves an Ordo-timestamped key-value engine over TCP using
// the wire protocol (internal/wire). It is the network face of the paper's
// result: start it with -protocol OCC and again with -protocol OCC_ORDO and
// the same workload measures logical-clock versus hardware-clock timestamp
// allocation through a socket.
//
// Usage:
//
//	ordod -protocol OCC_ORDO -addr :7421
//	ordod -protocol OCC_ORDO -monitor -health-json health.json
//
// SIGINT/SIGTERM drain gracefully: accepted requests finish, responses
// flush, then the process exits 0 and (with -health-json) writes a combined
// server + clock-health snapshot.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/health"
	"ordo/internal/server"
)

func main() {
	var (
		proto = flag.String("protocol", "OCC_ORDO",
			"engine protocol (OCC, OCC_ORDO, SILO, TICTOC, HEKATON, HEKATON_ORDO)")
		addr     = flag.String("addr", "127.0.0.1:7421", "listen address")
		cols     = flag.Int("cols", 10, "row width of the single served table")
		maxBatch = flag.Int("max-batch", server.DefaultMaxBatch,
			"max pipelined ops folded into one engine transaction")
		queue = flag.Int("queue", server.DefaultQueueDepth,
			"per-connection pending-op bound; ops beyond it are shed with BUSY")
		retries = flag.Int("retries", server.DefaultMaxRetries,
			"conflict retries per transaction before surfacing CONFLICT")
		monitor = flag.Bool("monitor", false,
			"run a background clock-health monitor (recalibrates the boundary periodically)")
		monInterval = flag.Duration("monitor-interval", 2*time.Second,
			"recalibration cadence for -monitor")
		idleTimeout = flag.Duration("idle-timeout", 0,
			"evict connections that send no complete request for this long (0 disables)")
		writeTimeout = flag.Duration("write-timeout", 0,
			"evict connections whose response writes stall for this long (0 disables)")
		healthJSON = flag.String("health-json", "",
			"write the final server+clock snapshot as JSON to this file ('-' for stdout) on shutdown")
		calRuns = flag.Int("calibration-runs", 200, "clock-pair samples per calibration")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("ordod: ")

	if err := run(*proto, *addr, *cols, *maxBatch, *queue, *retries,
		*idleTimeout, *writeTimeout,
		*monitor, *monInterval, *healthJSON, *calRuns); err != nil {
		log.Fatal(err)
	}
}

func run(protoName, addr string, cols, maxBatch, queue, retries int,
	idleTimeout, writeTimeout time.Duration,
	monitor bool, monInterval time.Duration, healthJSON string, calRuns int) error {
	proto, err := db.ParseProtocol(protoName)
	if err != nil {
		return err
	}
	if cols <= 0 {
		return fmt.Errorf("-cols must be positive, got %d", cols)
	}

	// Calibrate the host clock only when something will use it: an
	// Ordo-timestamped protocol, or the health monitor.
	var (
		ordo *core.Ordo
		mon  *health.Monitor
	)
	needsOrdo := proto == db.OCCOrdo || proto == db.HekatonOrdo
	if needsOrdo || monitor {
		var b core.Boundary
		ordo, b, err = core.CalibrateHardware(core.CalibrationOptions{Runs: calRuns})
		if err != nil {
			return fmt.Errorf("calibration: %w", err)
		}
		log.Printf("host ORDO_BOUNDARY: %d ticks over %d CPUs", b.Global, b.CPUs)
	}
	if monitor {
		mon = health.NewMonitor(ordo, health.Options{
			Interval:    monInterval,
			Calibration: core.CalibrationOptions{Runs: calRuns},
			Stats:       health.NewStats(),
		})
		mon.Start()
		defer mon.Stop()
	}

	schema := db.Schema{Tables: []db.TableDef{{Name: "t0", Cols: cols}}}
	engine, err := db.New(proto, schema, ordo)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		DB:           engine,
		Schema:       schema,
		MaxBatch:     maxBatch,
		QueueDepth:   queue,
		MaxRetries:   retries,
		IdleTimeout:  idleTimeout,
		WriteTimeout: writeTimeout,
		Monitor:      mon,
		Logf:         log.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("serving %s on %s (max-batch=%d queue=%d retries=%d idle-timeout=%v write-timeout=%v)",
		proto, ln.Addr(), maxBatch, queue, retries, idleTimeout, writeTimeout)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-serveErr; err != nil {
			return err
		}
	case err := <-serveErr:
		return err
	}

	snap := srv.Snapshot()
	log.Printf("drained: %d conns, %d commits, %d aborts, %d batches (avg %.1f ops), %d shed, %d degraded, %d evicted",
		snap.ConnsTotal, snap.Commits, snap.Aborts, snap.Batches, snap.AvgBatch,
		snap.Busy, snap.Degraded, snap.Evictions)
	if healthJSON != "" {
		if err := emitSnapshot(snap, healthJSON); err != nil {
			return err
		}
	}
	return nil
}

func emitSnapshot(snap server.Snapshot, path string) error {
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	log.Printf("snapshot written to %s", path)
	return nil
}
