// Command ordod serves an Ordo-timestamped key-value engine over TCP using
// the wire protocol (internal/wire). It is the network face of the paper's
// result: start it with -protocol OCC and again with -protocol OCC_ORDO and
// the same workload measures logical-clock versus hardware-clock timestamp
// allocation through a socket.
//
// Usage:
//
//	ordod -protocol OCC_ORDO -addr :7421
//	ordod -protocol OCC_ORDO -monitor -health-json health.json
//	ordod -protocol OCC_ORDO -wal-dir /var/lib/ordod/wal -wal-sync flush
//
// With -wal-dir the server is crash-safe: committed write-sets append to a
// file-backed write-ahead log and responses are withheld until a
// group-commit flush covers them; on startup the log is recovered (torn
// tail truncated, retried flushes deduped) and replayed into the engine in
// timestamp order before the listener opens.
//
// SIGINT/SIGTERM drain gracefully: accepted requests finish, responses
// flush, then the process exits 0 and (with -health-json) writes a combined
// server + clock-health snapshot.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/failover"
	"ordo/internal/health"
	"ordo/internal/repl"
	"ordo/internal/server"
	"ordo/internal/telemetry"
	"ordo/internal/telemetry/span"
	"ordo/internal/tsc"
	"ordo/internal/wal"
)

// options bundles the parsed flags run() serves from.
type options struct {
	proto    string
	addr     string
	addrFile string
	cols     int
	shards   int
	maxBatch int
	queue    int
	retries  int

	monitor     bool
	monInterval time.Duration
	calRuns     int

	idleTimeout  time.Duration
	writeTimeout time.Duration
	healthJSON   string

	adminAddr     string
	adminAddrFile string
	slowOp        time.Duration
	traceEvents   int
	traceSample   float64
	traceSpans    int

	walDir       string
	walSync      string
	walSyncEvery time.Duration
	walSegBytes  int64

	follow       string
	replAddr     string
	replAddrFile string
	replCursor   string
	replLagBound time.Duration

	failover         bool
	peers            string
	peerIndex        int
	heartbeatTimeout time.Duration
	replAckBound     time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.proto, "protocol", "OCC_ORDO",
		"engine protocol (OCC, OCC_ORDO, SILO, TICTOC, HEKATON, HEKATON_ORDO)")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:7421", "listen address")
	flag.StringVar(&o.addrFile, "addr-file", "",
		"write the bound listen address to this file once listening (for :0 port discovery)")
	flag.IntVar(&o.cols, "cols", 10, "row width of the single served table")
	flag.IntVar(&o.shards, "shards", 1,
		"single-writer partition lanes the keyspace is hashed across (1 disables sharding)")
	flag.IntVar(&o.maxBatch, "max-batch", server.DefaultMaxBatch,
		"max pipelined ops folded into one engine transaction")
	flag.IntVar(&o.queue, "queue", server.DefaultQueueDepth,
		"per-connection pending-op bound; ops beyond it are shed with BUSY")
	flag.IntVar(&o.retries, "retries", server.DefaultMaxRetries,
		"conflict retries per transaction before surfacing CONFLICT")
	flag.BoolVar(&o.monitor, "monitor", false,
		"run a background clock-health monitor (recalibrates the boundary periodically)")
	flag.DurationVar(&o.monInterval, "monitor-interval", 2*time.Second,
		"recalibration cadence for -monitor")
	flag.DurationVar(&o.idleTimeout, "idle-timeout", 0,
		"evict connections that send no complete request for this long (0 disables)")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 0,
		"evict connections whose response writes stall for this long (0 disables)")
	flag.StringVar(&o.healthJSON, "health-json", "",
		"write the final server+clock snapshot as JSON to this file ('-' for stdout) on shutdown")
	flag.StringVar(&o.adminAddr, "admin-addr", "",
		"admin HTTP listen address serving /metrics, /healthz, /varz, /trace, /debug/pprof (empty disables)")
	flag.StringVar(&o.adminAddrFile, "admin-addr-file", "",
		"write the bound admin address to this file once listening (for :0 port discovery)")
	flag.DurationVar(&o.slowOp, "slow-op", server.DefaultSlowOp,
		"runs and WAL syncs slower than this are recorded in the event trace")
	flag.IntVar(&o.traceEvents, "trace-events", telemetry.DefaultTraceEvents,
		"event-trace ring capacity for /trace")
	flag.Float64Var(&o.traceSample, "trace-sample", 0,
		"distributed-tracing head-sampling probability in [0,1]; 0 disables tracing (requires -admin-addr for /spans)")
	flag.IntVar(&o.traceSpans, "trace-spans", span.DefaultRingSpans,
		"distributed-tracing span ring capacity for /spans")
	flag.IntVar(&o.calRuns, "calibration-runs", 200, "clock-pair samples per calibration")
	flag.StringVar(&o.walDir, "wal-dir", "",
		"write-ahead log directory; enables durable serving with startup recovery (empty disables)")
	flag.StringVar(&o.walSync, "wal-sync", "flush",
		"WAL sync policy: 'flush' fsyncs every group-commit flush, 'batched' fsyncs on a timer")
	flag.DurationVar(&o.walSyncEvery, "wal-sync-every", 0,
		"fsync cadence for -wal-sync batched (0 means the device default)")
	flag.Int64Var(&o.walSegBytes, "wal-segment-bytes", 0,
		"WAL segment rotation size (0 means the device default)")
	flag.StringVar(&o.follow, "follow", "",
		"run as a read-only follower tailing this leader replication address (requires -wal-dir)")
	flag.StringVar(&o.replAddr, "repl-addr", "",
		"leader replication listen address; followers subscribe here (requires -wal-dir, empty disables)")
	flag.StringVar(&o.replAddrFile, "repl-addr-file", "",
		"write the bound replication address to this file once listening (for :0 port discovery)")
	flag.StringVar(&o.replCursor, "repl-cursor", "",
		"follower stream-cursor sidecar path (default <wal-dir>/cursor.json)")
	flag.DurationVar(&o.replLagBound, "repl-lag-bound", server.DefaultLagBound,
		"follower health bound: /healthz turns 503 when the leader is silent this long")
	flag.BoolVar(&o.failover, "failover", false,
		"run as a failover cluster member: probe -peers at boot, follow or lead per the epoch-fenced election (requires -wal-dir, -peers)")
	flag.StringVar(&o.peers, "peers", "",
		"failover cluster map as repl-addr@client-addr,... in priority order; must be identical on every member")
	flag.IntVar(&o.peerIndex, "peer-index", 0, "this node's position in -peers")
	flag.DurationVar(&o.heartbeatTimeout, "heartbeat-timeout", failover.DefaultHeartbeatTimeout,
		"leader silence a follower tolerates before starting an election")
	flag.DurationVar(&o.replAckBound, "repl-ack-bound", 0,
		"gate durable write acks on follower replication acks, bounded by this wait (0 disables; failover mode defaults to 2s)")
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("ordod: ")

	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

func run(o options) error {
	proto, err := db.ParseProtocol(o.proto)
	if err != nil {
		return err
	}
	if o.cols <= 0 {
		return fmt.Errorf("-cols must be positive, got %d", o.cols)
	}

	// Calibrate the host clock only when something will use it: an
	// Ordo-timestamped protocol, or the health monitor.
	var (
		ordo *core.Ordo
		mon  *health.Monitor
	)
	needsOrdo := proto == db.OCCOrdo || proto == db.HekatonOrdo
	if needsOrdo || o.monitor {
		var b core.Boundary
		ordo, b, err = core.CalibrateHardware(core.CalibrationOptions{Runs: o.calRuns})
		if err != nil {
			return fmt.Errorf("calibration: %w", err)
		}
		log.Printf("host ORDO_BOUNDARY: %d ticks over %d CPUs", b.Global, b.CPUs)
	}
	if o.monitor {
		mon = health.NewMonitor(ordo, health.Options{
			Interval:    o.monInterval,
			Calibration: core.CalibrationOptions{Runs: o.calRuns},
			Stats:       health.NewStats(),
		})
		mon.Start()
		defer mon.Stop()
	}

	// Telemetry rides the admin endpoint: no -admin-addr means no registry,
	// and the serving path stays observation-free.
	var tel *server.Telemetry
	if o.adminAddr != "" {
		reg := telemetry.NewRegistry()
		tracer := telemetry.NewTracer(o.traceEvents)
		tel = server.NewTelemetry(reg, tracer, o.slowOp)
		switch {
		case mon != nil:
			mon.Telemetry(reg, tracer)
		case ordo != nil:
			// No monitor, but an Ordo engine: export the boundary directly
			// so ordo_boundary_ns is on every scrape of an ordo server.
			hz := tsc.Frequency()
			reg.GaugeFunc("ordo_boundary_ns", "Current ORDO_BOUNDARY in nanoseconds.",
				func() float64 {
					if hz == 0 {
						return 0
					}
					return float64(ordo.Boundary()) / float64(hz) * 1e9
				})
			reg.GaugeFunc("ordo_boundary_ticks", "Current ORDO_BOUNDARY in invariant-counter ticks.",
				func() float64 { return float64(ordo.Boundary()) })
		}
	}

	schema := db.Schema{Tables: []db.TableDef{{Name: "t0", Cols: o.cols}}}
	engine, err := db.New(proto, schema, ordo)
	if err != nil {
		return err
	}

	// Replication roles are decided up front so durable-mode setup below
	// can build on them. Both roles require a WAL: the leader streams it,
	// the follower appends the stream to its own.
	role := server.RoleNone
	switch {
	case o.follow != "" && o.replAddr != "":
		return fmt.Errorf("-follow and -repl-addr are mutually exclusive (no chained replication)")
	case o.follow != "":
		role = server.RoleFollower
	case o.replAddr != "":
		role = server.RoleLeader
	}
	if role != server.RoleNone && o.walDir == "" {
		return fmt.Errorf("replication requires -wal-dir")
	}

	// Failover mode decides the role itself, by probing the cluster —
	// BEFORE recovery, because a fenced ex-leader must truncate its
	// unshipped WAL suffix while nothing has the log open.
	cursor := o.replCursor
	if cursor == "" && o.walDir != "" {
		cursor = filepath.Join(o.walDir, "cursor.json")
	}
	var (
		fpeers []failover.Peer
		boot   *failover.Bootstrap
	)
	if o.failover {
		if role != server.RoleNone {
			return fmt.Errorf("-failover is mutually exclusive with -follow and -repl-addr")
		}
		if o.walDir == "" {
			return fmt.Errorf("-failover requires -wal-dir")
		}
		fpeers, err = failover.ParsePeers(o.peers)
		if err != nil {
			return err
		}
		if o.peerIndex < 0 || o.peerIndex >= len(fpeers) {
			return fmt.Errorf("-peer-index %d outside -peers list of %d", o.peerIndex, len(fpeers))
		}
		if o.replAckBound <= 0 {
			// Failover's no-lost-acks guarantee rests on the replication-ack
			// gate; default it on rather than silently serving ungated.
			o.replAckBound = 2 * time.Second
		}
		boot, err = failover.Decide(failover.BootstrapConfig{
			Dir:              o.walDir,
			Index:            o.peerIndex,
			Peers:            fpeers,
			CursorFile:       cursor,
			HeartbeatTimeout: o.heartbeatTimeout,
			Logf:             log.Printf,
		})
		if err != nil {
			return err
		}
		role = boot.Role
		log.Printf("failover bootstrap: role=%v epoch=%d leader-index=%d truncated=%d resumed=%v",
			boot.Role, boot.Epoch, boot.LeaderIndex, boot.Truncated, boot.Resumed)
	}

	// Durable mode: recover and replay the log into the fresh engine, then
	// open the device for appending — all before the listener exists, so no
	// client ever observes pre-recovery state.
	var (
		walLog  *wal.Log
		walDev  *wal.FileDevice
		recInfo *wal.RecoveryInfo
	)
	if o.walDir != "" {
		var sync wal.SyncPolicy
		switch o.walSync {
		case "flush":
			sync = wal.SyncEachWrite
		case "batched":
			sync = wal.SyncBatched
		default:
			return fmt.Errorf("-wal-sync must be 'flush' or 'batched', got %q", o.walSync)
		}
		recs, info, err := wal.Recover(o.walDir)
		if err != nil {
			return fmt.Errorf("wal recovery: %w", err)
		}
		st, err := server.Replay(engine, recs)
		if err != nil {
			return fmt.Errorf("wal replay: %w", err)
		}
		log.Printf("wal recovered: %d records (%d ops) from %d segments, %d incarnations; %d duplicates dropped, %d torn bytes truncated, %d replay anomalies",
			info.Records, st.Ops, info.Segments, info.Incarnations,
			info.Duplicates, info.TruncatedBytes, st.Anomalies)
		fcfg := wal.FileConfig{
			SegmentBytes: o.walSegBytes,
			Sync:         sync,
			SyncEvery:    o.walSyncEvery,
		}
		if boot != nil {
			fcfg.Epoch = boot.Epoch
		}
		if tel != nil {
			fcfg.SyncObserver = tel.WALSyncObserver()
		}
		dev, err := wal.OpenFile(o.walDir, fcfg)
		if err != nil {
			return fmt.Errorf("wal open: %w", err)
		}
		defer dev.Close()
		walDev = dev
		walLog = wal.New(dev, nil)
		recInfo = &info
	}

	// boundary reports the current Ordo uncertainty window in clock ticks,
	// doubled while the health monitor is flagging anomalies — a suspect
	// clock widens the replication watermark rather than serving reads it
	// cannot vouch for.
	boundary := func() uint64 {
		if mon != nil {
			cs := mon.Snapshot()
			b := cs.BoundaryTicks
			if cs.Anomalies > 0 {
				b *= 2
			}
			return b
		}
		if ordo != nil {
			return uint64(ordo.Boundary())
		}
		return 0
	}
	var replState *server.ReplState
	if role != server.RoleNone {
		var tickHz uint64
		if ordo != nil {
			tickHz = tsc.Frequency()
		}
		replState = server.NewReplState(role, tickHz, o.replLagBound, 0)
	}

	// Distributed tracing: one span ring per process, stamped with this
	// node's name and fencing epoch, timed by the Ordo clock when one is
	// calibrated (wall clock otherwise). Enabled before the server binds so
	// the serving path's sampler is live from the first connection.
	var spanRing *span.Ring
	if o.traceSample > 0 {
		if tel == nil {
			return fmt.Errorf("-trace-sample requires -admin-addr (spans are served on /spans)")
		}
		rcfg := span.RingConfig{Node: o.addr, Size: o.traceSpans}
		if hz := tsc.Frequency(); ordo != nil && hz != 0 {
			// Span timestamps ride the kernel wall clock — the timebase every
			// process on the host (and, NTP willing, every node) shares — with
			// the calibrated Ordo boundary as the uncertainty half-width.
			// Stamping raw ticks/Frequency() here instead would be a trap:
			// each process measures its own hz, and that estimate's error is
			// multiplied by the counter's full uptime, so two nodes' span
			// clocks drift apart by hundreds of ms while still claiming the
			// boundary's nanosecond-scale certainty. The conversion below is
			// therefore only ever applied to short tick *deltas*.
			//
			// Split the conversion at the second so a counter that has run
			// for years cannot overflow the ×1e9.
			ticksNS := func(t uint64) uint64 {
				return t/hz*1e9 + t%hz*1e9/hz
			}
			rcfg.Clock = func() (uint64, uint64) {
				return uint64(time.Now().UnixNano()), ticksNS(uint64(ordo.Boundary()))
			}
			// Commit timestamps are engine ticks from moments ago: anchor at
			// the current (wall, ticks) pair and subtract the delta, so the
			// per-process frequency error acts on microseconds, not uptime.
			rcfg.ConvTicks = func(t uint64) uint64 {
				nowTicks, wall := uint64(ordo.GetTime()), uint64(time.Now().UnixNano())
				if t > nowTicks {
					return wall
				}
				if d := ticksNS(nowTicks - t); d < wall {
					return wall - d
				}
				return 0
			}
		}
		if replState != nil {
			rcfg.Epoch = replState.Epoch
		}
		spanRing = span.NewRing(rcfg)
		tel.EnableTracing(spanRing, o.traceSample)
		log.Printf("tracing enabled: sample=%g spans=%d node=%s", o.traceSample, o.traceSpans, o.addr)
	}

	scfg := server.Config{
		DB:           engine,
		Schema:       schema,
		Shards:       o.shards,
		Ordo:         ordo,
		MaxBatch:     o.maxBatch,
		QueueDepth:   o.queue,
		MaxRetries:   o.retries,
		IdleTimeout:  o.idleTimeout,
		WriteTimeout: o.writeTimeout,
		Monitor:      mon,
		WAL:          walLog,
		Recovery:     recInfo,
		Telemetry:    tel,
		Repl:         replState,
		Logf:         log.Printf,
	}
	scfg.ReplAckBound = o.replAckBound
	if role == server.RoleFollower {
		// The apply loop is the local log's only writer and the engine's
		// only mutator; the serving path is reads-only over both.
		scfg.WAL = nil
		scfg.ReadOnly = true
		if o.failover {
			// Promotion happens in place: keep the group committer alive
			// (ReadOnly keeps the serving path off it until the flip).
			scfg.WAL = walLog
		}
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}

	// Leader: stream the WAL to followers on the replication listener.
	// The Source installs itself as the log's sink here — before the
	// serving listener exists — so no flushed record can predate it.
	var src *repl.Source
	if role == server.RoleLeader && !o.failover {
		src, err = repl.NewSource(repl.SourceConfig{
			Dir:         o.walDir,
			Log:         walLog,
			Incarnation: walDev.Incarnation(),
			State:       replState,
			Boundary:    boundary,
			Spans:       spanRing,
			Logf:        log.Printf,
		})
		if err != nil {
			return err
		}
		replLn, err := net.Listen("tcp", o.replAddr)
		if err != nil {
			return fmt.Errorf("repl listen: %w", err)
		}
		if o.replAddrFile != "" {
			if err := os.WriteFile(o.replAddrFile, []byte(replLn.Addr().String()), 0o644); err != nil {
				return fmt.Errorf("-repl-addr-file: %w", err)
			}
		}
		log.Printf("replication source on %s (incarnation %d)", replLn.Addr(), walDev.Incarnation())
		go func() {
			if err := src.Serve(replLn); err != nil {
				log.Printf("repl serve: %v", err)
			}
		}()
		defer src.Close()
	}

	// Follower: tail the leader in the background until shutdown.
	if role == server.RoleFollower && !o.failover {
		fol, err := repl.NewFollower(repl.FollowerConfig{
			Addr:      o.follow,
			DB:        engine,
			Log:       walLog,
			State:     replState,
			Telemetry: tel,
			StateFile: cursor,
			Boundary:  boundary,
			Spans:     spanRing,
			Logf:      log.Printf,
		})
		if err != nil {
			return err
		}
		log.Printf("following %s from cursor (%d, %d)", o.follow, fol.Position().Inc, fol.Position().Seq)
		fctx, fcancel := context.WithCancel(context.Background())
		folDone := make(chan struct{})
		go func() {
			defer close(folDone)
			_ = fol.Run(fctx)
		}()
		defer func() {
			fcancel()
			<-folDone
		}()
	}

	// Failover mode: one supervisor owns the replication listener, the
	// follower session loop, leader-death detection and promotion.
	if o.failover {
		fnode, err := failover.NewNode(failover.Config{
			Index:            o.peerIndex,
			Peers:            fpeers,
			Dir:              o.walDir,
			CursorFile:       cursor,
			DB:               engine,
			Log:              walLog,
			Device:           walDev,
			Server:           srv,
			State:            replState,
			Telemetry:        tel,
			Spans:            spanRing,
			Boundary:         boundary,
			Boot:             boot,
			HeartbeatTimeout: o.heartbeatTimeout,
			Logf:             log.Printf,
		})
		if err != nil {
			return err
		}
		replLn, err := net.Listen("tcp", fpeers[o.peerIndex].Repl)
		if err != nil {
			return fmt.Errorf("failover repl listen: %w", err)
		}
		if o.replAddrFile != "" {
			if err := os.WriteFile(o.replAddrFile, []byte(replLn.Addr().String()), 0o644); err != nil {
				return fmt.Errorf("-repl-addr-file: %w", err)
			}
		}
		log.Printf("failover node %d on %s: role=%v epoch=%d heartbeat-timeout=%v",
			o.peerIndex, replLn.Addr(), fnode.Role(), fnode.Epoch(), o.heartbeatTimeout)
		go func() {
			if err := fnode.Serve(replLn); err != nil {
				log.Printf("failover serve: %v", err)
			}
		}()
		fctx, fcancel := context.WithCancel(context.Background())
		fdone := make(chan struct{})
		go func() {
			defer close(fdone)
			_ = fnode.Run(fctx)
		}()
		defer func() {
			fcancel()
			fnode.Close()
			<-fdone
		}()
	}

	// The admin endpoint opens before the serving listener so an operator
	// (or a readiness probe) can watch recovery-to-serving transitions.
	var admin *server.AdminServer
	if o.adminAddr != "" {
		admin, err = server.ServeAdmin(o.adminAddr, server.NewAdminHandler(srv))
		if err != nil {
			return fmt.Errorf("admin listen: %w", err)
		}
		if o.adminAddrFile != "" {
			if err := os.WriteFile(o.adminAddrFile, []byte(admin.Addr().String()), 0o644); err != nil {
				return fmt.Errorf("-admin-addr-file: %w", err)
			}
		}
		log.Printf("admin endpoint on http://%s (/metrics /healthz /varz /trace /spans /debug/pprof/)", admin.Addr())
	}
	closeAdmin := func() {
		if admin == nil {
			return
		}
		if err := admin.Close(); err != nil {
			log.Printf("admin close: %v", err)
		}
		admin = nil
	}
	defer closeAdmin()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.addrFile != "" {
		if err := os.WriteFile(o.addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return fmt.Errorf("-addr-file: %w", err)
		}
	}
	log.Printf("serving %s on %s (max-batch=%d queue=%d retries=%d idle-timeout=%v write-timeout=%v durable=%v role=%v)",
		proto, ln.Addr(), o.maxBatch, o.queue, o.retries, o.idleTimeout, o.writeTimeout, walLog != nil, role)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-serveErr; err != nil {
			return err
		}
		closeAdmin()
	case err := <-serveErr:
		return err
	}

	snap := srv.Snapshot()
	log.Printf("drained: %d conns, %d commits, %d aborts, %d batches (avg %.1f ops), %d shed, %d degraded, %d evicted, %d wal flushes (%d records, %d device errors)",
		snap.ConnsTotal, snap.Commits, snap.Aborts, snap.Batches, snap.AvgBatch,
		snap.Busy, snap.Degraded, snap.Evictions,
		snap.WALFlushes, snap.WALRecords, snap.WALDeviceErrors)
	if o.healthJSON != "" {
		if err := emitSnapshot(snap, o.healthJSON); err != nil {
			return err
		}
	}
	return nil
}

func emitSnapshot(snap server.Snapshot, path string) error {
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	log.Printf("snapshot written to %s", path)
	return nil
}
