package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ordo/internal/wire"
)

// The kill-crash harness: a real ordod subprocess serving durably is
// SIGKILLed at a seeded random point under write load, restarted on the
// same log directory, and the recovered state is checked against exactly
// what the client saw acknowledged:
//
//   - no acked write is lost (recovered seq ≥ last acked seq per key),
//   - no unacked write resurrects as acked (recovered seq ≤ max issued),
//   - keys never issued stay absent,
//   - the restart reports a non-trivial recovery in STATS.
//
// SIGKILL gives the process no chance to flush anything it hadn't already
// fsynced, while the page cache (and so everything fsynced) survives — the
// honest model of a process crash.

// ordodBin is the test-built server binary, compiled once in TestMain.
var ordodBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ordod-crash")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ordodBin = filepath.Join(dir, "ordod")
	out, err := exec.Command("go", "build", "-o", ordodBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building ordod: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

const (
	crashSeeds  = 8
	crashKeys   = 48
	crashWindow = 16
	bootTimeout = 30 * time.Second
)

// ordodProc is one running server subprocess.
type ordodProc struct {
	cmd  *exec.Cmd
	addr string
	log  string
}

// startOrdod boots the binary on a :0 port with the given WAL dir and
// waits for the address file.
func startOrdod(t *testing.T, walDir, tag string) *ordodProc {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	logFile := filepath.Join(dir, "ordod-"+tag+".log")
	lf, err := os.Create(logFile)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(ordodBin,
		"-protocol", "OCC_ORDO",
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-wal-dir", walDir,
		"-calibration-runs", "20",
	)
	cmd.Stdout = lf
	cmd.Stderr = lf
	if err := cmd.Start(); err != nil {
		lf.Close()
		t.Fatal(err)
	}
	deadline := time.Now().Add(bootTimeout)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			lf.Close()
			return &ordodProc{cmd: cmd, addr: strings.TrimSpace(string(b)), log: logFile}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			lf.Close()
			b, _ := os.ReadFile(logFile)
			t.Fatalf("ordod (%s) never wrote its address; log:\n%s", tag, b)
		}
		if cmd.ProcessState != nil {
			t.Fatalf("ordod (%s) exited before listening", tag)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func dumpLog(t *testing.T, p *ordodProc) {
	t.Helper()
	if b, err := os.ReadFile(p.log); err == nil {
		t.Logf("ordod log:\n%s", b)
	}
}

// crashClient is the load phase's bookkeeping: per-key sequence numbers
// issued and acked, in strict pipeline order on one connection.
type crashClient struct {
	nc        net.Conn
	c         *wire.Conn
	issued    []crashOp // in-flight window, response order
	maxIssued [crashKeys]uint64
	lastAcked [crashKeys]uint64
	ackedAny  bool
}

type crashOp struct {
	key uint64
	seq uint64
}

// crashRow builds the served table's row for (key, seq): vals[0] is the
// key, vals[1] the per-key sequence number, the rest padding.
func crashRow(key, seq uint64) []uint64 {
	vals := make([]uint64, 10) // ordod's default -cols
	vals[0] = key
	vals[1] = seq
	return vals
}

// drainWindow reads one response per in-flight op; an error means the
// server died mid-window (expected once the kill fires).
func (cc *crashClient) drainWindow() error {
	for len(cc.issued) > 0 {
		cc.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		r, err := cc.c.ReadResponse()
		if err != nil {
			return err
		}
		op := cc.issued[0]
		cc.issued = cc.issued[1:]
		if r.Status == wire.StatusOK {
			cc.lastAcked[op.key] = op.seq
			cc.ackedAny = true
		}
	}
	return nil
}

// killCrashRun drives one seed: load, SIGKILL, restart, verify.
func killCrashRun(t *testing.T, seed int) {
	walDir := t.TempDir()
	p1 := startOrdod(t, walDir, fmt.Sprintf("seed%d-a", seed))

	nc, err := net.Dial("tcp", p1.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	cc := &crashClient{nc: nc, c: wire.NewConn(nc)}

	// Phase A: insert every key with seq 0, fully acked before the kill
	// timer starts, so after recovery every key must exist.
	for k := uint64(0); k < crashKeys; k++ {
		if err := cc.c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: k, Vals: crashRow(k, 0)}); err != nil {
			t.Fatal(err)
		}
		cc.issued = append(cc.issued, crashOp{key: k, seq: 0})
		cc.maxIssued[k] = 0
	}
	if err := cc.c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cc.drainWindow(); err != nil {
		dumpLog(t, p1)
		t.Fatalf("insert phase died: %v", err)
	}
	for k := range cc.lastAcked {
		if cc.lastAcked[k] != 0 {
			t.Fatalf("key %d insert not acked", k)
		}
	}

	// Phase B: per-key increasing PUT sequence under a seeded kill timer.
	// The seed spreads the SIGKILL across 150–850ms of live write load, so
	// the eight runs die at different log offsets — some mid-write (torn
	// tail), some between flushes.
	killDelay := 150*time.Millisecond + time.Duration((seed*97)%700)*time.Millisecond
	killed := make(chan struct{})
	go func() {
		time.Sleep(killDelay)
		p1.cmd.Process.Signal(syscall.SIGKILL)
		close(killed)
	}()

	seq := uint64(1)
	var deadErr error
	for deadErr == nil {
		for i := 0; i < crashWindow; i++ {
			k := (seq + uint64(i)) % crashKeys
			s := seq + uint64(i)
			if err := cc.c.WriteRequest(&wire.Request{Op: wire.OpPut, Key: k, Vals: crashRow(k, s)}); err != nil {
				deadErr = err
				break
			}
			cc.issued = append(cc.issued, crashOp{key: k, seq: s})
			cc.maxIssued[k] = s
		}
		seq += crashWindow
		if deadErr == nil {
			if err := cc.c.Flush(); err != nil {
				deadErr = err
				break
			}
			deadErr = cc.drainWindow()
		}
	}
	<-killed
	p1.cmd.Wait() // reaps the SIGKILLed process
	if !cc.ackedAny {
		t.Fatalf("seed %d: nothing acked before the kill (delay %v); harness too slow", seed, killDelay)
	}

	// Restart on the same directory and sweep every key.
	p2 := startOrdod(t, walDir, fmt.Sprintf("seed%d-b", seed))
	nc2, err := net.Dial("tcp", p2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	c2 := wire.NewConn(nc2)

	for k := uint64(0); k < crashKeys; k++ {
		nc2.SetReadDeadline(time.Now().Add(10 * time.Second))
		r, err := c2.Do(&wire.Request{Op: wire.OpGet, Key: k})
		if err != nil {
			dumpLog(t, p2)
			t.Fatalf("seed %d: GET %d after restart: %v", seed, k, err)
		}
		if r.Status != wire.StatusOK {
			t.Fatalf("seed %d: acked key %d lost after crash: %v", seed, k, r.Status)
		}
		if r.Row[0] != k {
			t.Fatalf("seed %d: key %d recovered wrong row %v", seed, k, r.Row)
		}
		got := r.Row[1]
		if got < cc.lastAcked[k] {
			t.Fatalf("seed %d: key %d recovered seq %d < last acked %d — acked write lost",
				seed, k, got, cc.lastAcked[k])
		}
		if got > cc.maxIssued[k] {
			t.Fatalf("seed %d: key %d recovered seq %d > max issued %d — phantom write",
				seed, k, got, cc.maxIssued[k])
		}
	}
	// A key never issued must not exist.
	if r, err := c2.Do(&wire.Request{Op: wire.OpGet, Key: crashKeys + 7}); err != nil || r.Status != wire.StatusNotFound {
		t.Fatalf("seed %d: unissued key: %v %v, want NOT_FOUND", seed, r.Status, err)
	}
	// The restart must have recovered the pre-crash log, and its device
	// must be healthy.
	r, err := c2.Do(&wire.Request{Op: wire.OpStats})
	if err != nil || r.Stats == nil {
		t.Fatalf("seed %d: stats after restart: %v", seed, err)
	}
	if r.Stats.RecoveredRecords == 0 {
		t.Fatalf("seed %d: restart recovered zero records with %d keys live", seed, crashKeys)
	}
	if r.Stats.WALDeviceErrors != 0 {
		t.Fatalf("seed %d: device errors after restart: %d", seed, r.Stats.WALDeviceErrors)
	}
	nc2.Close()

	// Clean exit on SIGTERM: the drain must succeed (exit 0).
	p2.cmd.Process.Signal(syscall.SIGTERM)
	if err := p2.cmd.Wait(); err != nil {
		dumpLog(t, p2)
		t.Fatalf("seed %d: drain after recovery: %v", seed, err)
	}
}

// TestKillCrashRecovery runs the harness across fixed seeds; each seed
// kills the server at a different point of the write load.
func TestKillCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-crash harness skipped in -short")
	}
	for seed := 1; seed <= crashSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			killCrashRun(t, seed)
		})
	}
}
