package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ordo/internal/loadgen"
	"ordo/internal/wire"
)

// The kill-crash harness: a real ordod subprocess serving durably is
// SIGKILLed at a seeded random point under write load, restarted on the
// same log directory, and the recovered state is checked against exactly
// what the client saw acknowledged:
//
//   - no acked write is lost (recovered seq ≥ last acked seq per key),
//   - no unacked write resurrects as acked (recovered seq ≤ max issued),
//   - keys never issued stay absent,
//   - the restart reports a non-trivial recovery in STATS.
//
// SIGKILL gives the process no chance to flush anything it hadn't already
// fsynced, while the page cache (and so everything fsynced) survives — the
// honest model of a process crash.

// ordodBin is the test-built server binary, compiled once in TestMain.
var ordodBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ordod-crash")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ordodBin = filepath.Join(dir, "ordod")
	out, err := exec.Command("go", "build", "-o", ordodBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building ordod: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

const (
	crashSeeds  = 8
	crashKeys   = 48
	crashWindow = 16
	bootTimeout = 30 * time.Second
)

// ordodProc is one running server subprocess.
type ordodProc struct {
	cmd  *exec.Cmd
	addr string
	log  string
}

// startOrdod boots the binary on a :0 port with the given WAL dir and
// waits for the address file. Extra flags (replication roles) append to
// the base invocation.
func startOrdod(t *testing.T, walDir, tag string, extra ...string) *ordodProc {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	logFile := filepath.Join(dir, "ordod-"+tag+".log")
	lf, err := os.Create(logFile)
	if err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-protocol", "OCC_ORDO",
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-wal-dir", walDir,
		"-calibration-runs", "20",
		// Every kill-crash scenario runs sharded: recovery must replay a
		// log written by four lanes (plus coordinator records) correctly.
		"-shards", "4",
	}
	args = append(args, extra...)
	cmd := exec.Command(ordodBin, args...)
	cmd.Stdout = lf
	cmd.Stderr = lf
	if err := cmd.Start(); err != nil {
		lf.Close()
		t.Fatal(err)
	}
	deadline := time.Now().Add(bootTimeout)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			lf.Close()
			return &ordodProc{cmd: cmd, addr: strings.TrimSpace(string(b)), log: logFile}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			lf.Close()
			b, _ := os.ReadFile(logFile)
			t.Fatalf("ordod (%s) never wrote its address; log:\n%s", tag, b)
		}
		if cmd.ProcessState != nil {
			t.Fatalf("ordod (%s) exited before listening", tag)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func dumpLog(t *testing.T, p *ordodProc) {
	t.Helper()
	if b, err := os.ReadFile(p.log); err == nil {
		t.Logf("ordod log:\n%s", b)
	}
}

// crashClient is the load phase's bookkeeping: per-key sequence numbers
// issued and acked, in strict pipeline order on one connection.
type crashClient struct {
	nc        net.Conn
	c         *wire.Conn
	issued    []crashOp // in-flight window, response order
	maxIssued [crashKeys]uint64
	lastAcked [crashKeys]uint64
	ackedAny  bool
}

type crashOp struct {
	key uint64
	seq uint64
}

// crashRow builds the served table's row for (key, seq): vals[0] is the
// key, vals[1] the per-key sequence number, the rest padding.
func crashRow(key, seq uint64) []uint64 {
	vals := make([]uint64, 10) // ordod's default -cols
	vals[0] = key
	vals[1] = seq
	return vals
}

// drainWindow reads one response per in-flight op; an error means the
// server died mid-window (expected once the kill fires).
func (cc *crashClient) drainWindow() error {
	for len(cc.issued) > 0 {
		cc.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		r, err := cc.c.ReadResponse()
		if err != nil {
			return err
		}
		op := cc.issued[0]
		cc.issued = cc.issued[1:]
		if r.Status == wire.StatusOK {
			cc.lastAcked[op.key] = op.seq
			cc.ackedAny = true
		}
	}
	return nil
}

// killCrashRun drives one seed: load, SIGKILL, restart, verify.
func killCrashRun(t *testing.T, seed int) {
	walDir := t.TempDir()
	p1 := startOrdod(t, walDir, fmt.Sprintf("seed%d-a", seed))

	nc, err := net.Dial("tcp", p1.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	cc := &crashClient{nc: nc, c: wire.NewConn(nc)}

	// Phase A: insert every key with seq 0, fully acked before the kill
	// timer starts, so after recovery every key must exist.
	for k := uint64(0); k < crashKeys; k++ {
		if err := cc.c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: k, Vals: crashRow(k, 0)}); err != nil {
			t.Fatal(err)
		}
		cc.issued = append(cc.issued, crashOp{key: k, seq: 0})
		cc.maxIssued[k] = 0
	}
	if err := cc.c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cc.drainWindow(); err != nil {
		dumpLog(t, p1)
		t.Fatalf("insert phase died: %v", err)
	}
	for k := range cc.lastAcked {
		if cc.lastAcked[k] != 0 {
			t.Fatalf("key %d insert not acked", k)
		}
	}

	// Phase B: per-key increasing PUT sequence under a seeded kill timer.
	// The seed spreads the SIGKILL across 150–850ms of live write load, so
	// the eight runs die at different log offsets — some mid-write (torn
	// tail), some between flushes.
	killDelay := 150*time.Millisecond + time.Duration((seed*97)%700)*time.Millisecond
	killed := make(chan struct{})
	go func() {
		time.Sleep(killDelay)
		p1.cmd.Process.Signal(syscall.SIGKILL)
		close(killed)
	}()

	seq := uint64(1)
	var deadErr error
	for deadErr == nil {
		for i := 0; i < crashWindow; i++ {
			k := (seq + uint64(i)) % crashKeys
			s := seq + uint64(i)
			if err := cc.c.WriteRequest(&wire.Request{Op: wire.OpPut, Key: k, Vals: crashRow(k, s)}); err != nil {
				deadErr = err
				break
			}
			cc.issued = append(cc.issued, crashOp{key: k, seq: s})
			cc.maxIssued[k] = s
		}
		seq += crashWindow
		if deadErr == nil {
			if err := cc.c.Flush(); err != nil {
				deadErr = err
				break
			}
			deadErr = cc.drainWindow()
		}
	}
	<-killed
	p1.cmd.Wait() // reaps the SIGKILLed process
	if !cc.ackedAny {
		t.Fatalf("seed %d: nothing acked before the kill (delay %v); harness too slow", seed, killDelay)
	}

	// Restart on the same directory and sweep every key.
	p2 := startOrdod(t, walDir, fmt.Sprintf("seed%d-b", seed))
	nc2, err := net.Dial("tcp", p2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	c2 := wire.NewConn(nc2)

	for k := uint64(0); k < crashKeys; k++ {
		nc2.SetReadDeadline(time.Now().Add(10 * time.Second))
		r, err := c2.Do(&wire.Request{Op: wire.OpGet, Key: k})
		if err != nil {
			dumpLog(t, p2)
			t.Fatalf("seed %d: GET %d after restart: %v", seed, k, err)
		}
		if r.Status != wire.StatusOK {
			t.Fatalf("seed %d: acked key %d lost after crash: %v", seed, k, r.Status)
		}
		if r.Row[0] != k {
			t.Fatalf("seed %d: key %d recovered wrong row %v", seed, k, r.Row)
		}
		got := r.Row[1]
		if got < cc.lastAcked[k] {
			t.Fatalf("seed %d: key %d recovered seq %d < last acked %d — acked write lost",
				seed, k, got, cc.lastAcked[k])
		}
		if got > cc.maxIssued[k] {
			t.Fatalf("seed %d: key %d recovered seq %d > max issued %d — phantom write",
				seed, k, got, cc.maxIssued[k])
		}
	}
	// A key never issued must not exist.
	if r, err := c2.Do(&wire.Request{Op: wire.OpGet, Key: crashKeys + 7}); err != nil || r.Status != wire.StatusNotFound {
		t.Fatalf("seed %d: unissued key: %v %v, want NOT_FOUND", seed, r.Status, err)
	}
	// The restart must have recovered the pre-crash log, and its device
	// must be healthy.
	r, err := c2.Do(&wire.Request{Op: wire.OpStats})
	if err != nil || r.Stats == nil {
		t.Fatalf("seed %d: stats after restart: %v", seed, err)
	}
	if r.Stats.RecoveredRecords == 0 {
		t.Fatalf("seed %d: restart recovered zero records with %d keys live", seed, crashKeys)
	}
	if r.Stats.WALDeviceErrors != 0 {
		t.Fatalf("seed %d: device errors after restart: %d", seed, r.Stats.WALDeviceErrors)
	}
	nc2.Close()

	// Clean exit on SIGTERM: the drain must succeed (exit 0).
	p2.cmd.Process.Signal(syscall.SIGTERM)
	if err := p2.cmd.Wait(); err != nil {
		dumpLog(t, p2)
		t.Fatalf("seed %d: drain after recovery: %v", seed, err)
	}
}

// TestKillCrashRecovery runs the harness across fixed seeds; each seed
// kills the server at a different point of the write load.
func TestKillCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-crash harness skipped in -short")
	}
	for seed := 1; seed <= crashSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			killCrashRun(t, seed)
		})
	}
}

// ---- replication crash scenarios ----
//
// The same SIGKILL model, applied to a leader/follower pair: kill the
// leader mid-load and restart it on the same log directory and replication
// address, or kill the follower mid-apply and restart it on its own log
// directory. Either way the end state must satisfy, on both processes,
//
//	last acked seq ≤ recovered seq ≤ max issued seq   (per key)
//
// and every leader-acked write must eventually be visible on the follower.

// startLeader boots ordod as a replication leader. replAddr "" picks a
// port; the bound address is returned so a restart can reclaim it (the
// follower keeps dialing the address it was given).
func startLeader(t *testing.T, walDir, tag, replAddr string) (*ordodProc, string) {
	t.Helper()
	if replAddr != "" {
		return startOrdod(t, walDir, tag, "-repl-addr", replAddr), replAddr
	}
	raf := filepath.Join(t.TempDir(), "repl-addr")
	p := startOrdod(t, walDir, tag, "-repl-addr", "127.0.0.1:0", "-repl-addr-file", raf)
	// The replication listener opens before the client listener, so once
	// startOrdod returns the address file is already written.
	b, err := os.ReadFile(raf)
	if err != nil || len(b) == 0 {
		dumpLog(t, p)
		t.Fatalf("leader (%s) wrote no replication address: %v", tag, err)
	}
	return p, strings.TrimSpace(string(b))
}

// waitConverge polls the server at addr until every key carries at least
// its last acked sequence number, then asserts nothing beyond the max
// issued sequence leaked in. The deadline covers follower catch-up after a
// reconnect, which includes a disk backfill of the whole missed range.
func waitConverge(t *testing.T, addr, who string, cc *crashClient) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	deadline := time.Now().Add(30 * time.Second)
	for k := uint64(0); k < crashKeys; k++ {
		for {
			nc.SetReadDeadline(time.Now().Add(10 * time.Second))
			r, err := c.Do(&wire.Request{Op: wire.OpGet, Key: k})
			if err != nil {
				t.Fatalf("%s: GET %d: %v", who, k, err)
			}
			if r.Status == wire.StatusOK && r.Row[1] >= cc.lastAcked[k] {
				if r.Row[0] != k {
					t.Fatalf("%s: key %d served wrong row %v", who, k, r.Row)
				}
				if r.Row[1] > cc.maxIssued[k] {
					t.Fatalf("%s: key %d seq %d > max issued %d — phantom write",
						who, k, r.Row[1], cc.maxIssued[k])
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: key %d stuck at %v (status %v), want seq ≥ %d",
					who, k, r.Row, r.Status, cc.lastAcked[k])
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	// A key never issued must not have appeared either.
	if r, err := c.Do(&wire.Request{Op: wire.OpGet, Key: crashKeys + 7}); err != nil || r.Status != wire.StatusNotFound {
		t.Fatalf("%s: unissued key: %v %v, want NOT_FOUND", who, r.Status, err)
	}
}

// replInsertPhase runs the fully-acked seed inserts (seq 0 on every key)
// through cc, failing the test on any error.
func replInsertPhase(t *testing.T, cc *crashClient, p *ordodProc) {
	t.Helper()
	for k := uint64(0); k < crashKeys; k++ {
		if err := cc.c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: k, Vals: crashRow(k, 0)}); err != nil {
			t.Fatal(err)
		}
		cc.issued = append(cc.issued, crashOp{key: k, seq: 0})
		cc.maxIssued[k] = 0
	}
	if err := cc.c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cc.drainWindow(); err != nil {
		dumpLog(t, p)
		t.Fatalf("insert phase died: %v", err)
	}
}

// TestReplCrashLeaderKill SIGKILLs the leader under pipelined write load
// with a live follower attached, restarts it on the same WAL directory and
// replication address, and requires the follower to reconnect, resume by
// cursor, and converge on exactly the recovered leader state.
func TestReplCrashLeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess replication crash harness skipped in -short")
	}
	walDirL, walDirF := t.TempDir(), t.TempDir()

	p1, replAddr := startLeader(t, walDirL, "lkill-lead-a", "")
	fol := startOrdod(t, walDirF, "lkill-fol", "-follow", replAddr)
	defer func() {
		fol.cmd.Process.Kill()
		fol.cmd.Wait()
	}()

	nc, err := net.Dial("tcp", p1.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	cc := &crashClient{nc: nc, c: wire.NewConn(nc)}
	replInsertPhase(t, cc, p1)

	// PUT load with a mid-stream SIGKILL, as in killCrashRun.
	killed := make(chan struct{})
	go func() {
		time.Sleep(400 * time.Millisecond)
		p1.cmd.Process.Signal(syscall.SIGKILL)
		close(killed)
	}()
	seq := uint64(1)
	var deadErr error
	for deadErr == nil {
		for i := 0; i < crashWindow; i++ {
			k := (seq + uint64(i)) % crashKeys
			s := seq + uint64(i)
			if err := cc.c.WriteRequest(&wire.Request{Op: wire.OpPut, Key: k, Vals: crashRow(k, s)}); err != nil {
				deadErr = err
				break
			}
			cc.issued = append(cc.issued, crashOp{key: k, seq: s})
			cc.maxIssued[k] = s
		}
		seq += crashWindow
		if deadErr == nil {
			if err := cc.c.Flush(); err != nil {
				deadErr = err
				break
			}
			deadErr = cc.drainWindow()
		}
	}
	<-killed
	p1.cmd.Wait()
	if !cc.ackedAny {
		t.Fatal("nothing acked before the leader kill; harness too slow")
	}

	// Restart the leader on the same directory AND the same replication
	// address, so the follower's retry loop finds it again.
	p2, _ := startLeader(t, walDirL, "lkill-lead-b", replAddr)
	defer func() {
		p2.cmd.Process.Signal(syscall.SIGTERM)
		p2.cmd.Wait()
	}()

	// acked ≤ recovered ≤ issued on the restarted leader...
	waitConverge(t, p2.addr, "restarted leader", cc)
	// ...and, eventually, on the follower: every leader-acked write must
	// become visible there, and nothing unissued may materialize.
	waitConverge(t, fol.addr, "follower", cc)
}

// ---- failover crash scenario ----

// reservePort binds an ephemeral port, records it, and releases it so a
// subprocess can claim it. The tiny claim race is acceptable in a test.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// failoverStats polls addr until its STATS snapshot satisfies ok, or the
// deadline passes.
func failoverStats(t *testing.T, addr, who string, wait time.Duration, ok func(*wire.Stats) bool) *wire.Stats {
	t.Helper()
	deadline := time.Now().Add(wait)
	var last *wire.Stats
	for {
		if nc, err := net.Dial("tcp", addr); err == nil {
			nc.SetDeadline(time.Now().Add(5 * time.Second))
			r, err := wire.NewConn(nc).Do(&wire.Request{Op: wire.OpStats})
			nc.Close()
			if err == nil && r.Stats != nil {
				last = r.Stats
				if ok(r.Stats) {
					return r.Stats
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: stats never converged (last %+v)", who, last)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestFailoverLeaderKill boots a three-node failover cluster, SIGKILLs the
// leader under resilient-client write load, and requires: a follower
// promotes itself (epoch 2, writes resume), the run's per-key sweep proves
// acked ≤ recovered ≤ issued across the takeover, and the fenced
// ex-leader rejoins as a follower and converges on the new regime.
func TestFailoverLeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess failover harness skipped in -short")
	}
	const n = 3
	var clientAddrs, replAddrs [n]string
	var peers []string
	for i := 0; i < n; i++ {
		clientAddrs[i] = reservePort(t)
		replAddrs[i] = reservePort(t)
		peers = append(peers, replAddrs[i]+"@"+clientAddrs[i])
	}
	peerList := strings.Join(peers, ",")

	walDirs := [n]string{t.TempDir(), t.TempDir(), t.TempDir()}
	var procs [n]*ordodProc
	for i := 0; i < n; i++ {
		procs[i] = startOrdod(t, walDirs[i], fmt.Sprintf("fo-node%d-a", i),
			"-addr", clientAddrs[i],
			"-failover",
			"-peers", peerList,
			"-peer-index", fmt.Sprint(i),
			"-heartbeat-timeout", "500ms",
		)
	}
	defer func() {
		for _, p := range procs {
			if p != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	}()

	// Cold cluster: priority index 0 must lead, at a fenced (nonzero) epoch.
	failoverStats(t, clientAddrs[0], "cold leader", bootTimeout, func(s *wire.Stats) bool {
		return s.ReplRoleCode == 1 && s.ReplEpoch >= 1
	})

	// Drive per-key monotone writes through the resilient client while the
	// leader dies mid-run; RunFailover's read-back sweep is the per-key
	// acked ≤ recovered ≤ issued check against the promoted leader.
	type runOut struct {
		res *loadgen.FailoverResult
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := loadgen.RunFailover(loadgen.FailoverConfig{
			Endpoints: clientAddrs[:],
			Workers:   4,
			Keys:      crashKeys,
			Seconds:   8,
			OpTimeout: 2 * time.Second,
			RetryFor:  30 * time.Second,
		})
		done <- runOut{res, err}
	}()

	time.Sleep(2500 * time.Millisecond)
	procs[0].cmd.Process.Signal(syscall.SIGKILL)
	procs[0].cmd.Wait()

	out := <-done
	if out.err != nil {
		for i := 1; i < n; i++ {
			dumpLog(t, procs[i])
		}
		t.Fatalf("failover load: %v", out.err)
	}
	if out.res.Violations != 0 {
		t.Fatalf("%d per-key violations across the takeover", out.res.Violations)
	}
	if out.res.MaxAckGap <= 0 {
		t.Fatal("no ack gap measured; the kill never interrupted the load")
	}
	t.Logf("failover run: acked=%d max ack gap=%v not_leader=%d redirects=%d",
		out.res.Acked, out.res.MaxAckGap, out.res.Client.NotLeaderRetries, out.res.Client.Redirects)

	// One survivor must now lead at a bumped epoch with a promotion counted.
	newLeader := -1
	for i := 1; i < n; i++ {
		s := failoverStats(t, clientAddrs[i], fmt.Sprintf("node%d post-kill", i), bootTimeout,
			func(s *wire.Stats) bool { return s.ReplEpoch >= 2 })
		if s.ReplRoleCode == 1 {
			if s.Promotions == 0 {
				t.Fatalf("node%d leads epoch %d without counting a promotion", i, s.ReplEpoch)
			}
			newLeader = i
		}
	}
	if newLeader < 0 {
		t.Fatal("no survivor promoted to leader")
	}

	// The fenced ex-leader rejoins on its old WAL dir and ports: it must
	// come back as a follower of the new regime and converge byte-for-byte.
	procs[0] = startOrdod(t, walDirs[0], "fo-node0-b",
		"-addr", clientAddrs[0],
		"-failover",
		"-peers", peerList,
		"-peer-index", "0",
		"-heartbeat-timeout", "500ms",
	)
	failoverStats(t, clientAddrs[0], "rejoined ex-leader", bootTimeout, func(s *wire.Stats) bool {
		return s.ReplRoleCode == 2 && s.ReplEpoch >= 2
	})
	lead, err := loadgen.Sweep(clientAddrs[newLeader], crashKeys, crashWindow, 10*time.Second, 10*time.Second)
	if err != nil {
		t.Fatalf("sweep new leader: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := loadgen.Sweep(clientAddrs[0], crashKeys, crashWindow, 10*time.Second, 10*time.Second)
		if err == nil && got == lead {
			break
		}
		if time.Now().After(deadline) {
			dumpLog(t, procs[0])
			t.Fatalf("rejoined ex-leader diverged: %+v want %+v (err %v)", got, lead, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestReplCrashFollowerKill SIGKILLs the follower mid-apply while the
// leader keeps serving writes, restarts it on its own WAL directory, and
// requires it to recover from local disk, resume from its durable cursor
// (not from scratch), and converge on the full acked state.
func TestReplCrashFollowerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess replication crash harness skipped in -short")
	}
	walDirL, walDirF := t.TempDir(), t.TempDir()

	lead, replAddr := startLeader(t, walDirL, "fkill-lead", "")
	defer func() {
		lead.cmd.Process.Signal(syscall.SIGTERM)
		lead.cmd.Wait()
	}()
	f1 := startOrdod(t, walDirF, "fkill-fol-a", "-follow", replAddr)

	nc, err := net.Dial("tcp", lead.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	cc := &crashClient{nc: nc, c: wire.NewConn(nc)}
	replInsertPhase(t, cc, lead)

	// Make sure the follower is actively applying before aiming the kill
	// at it, so the SIGKILL genuinely lands mid-stream.
	waitConverge(t, f1.addr, "follower pre-kill", cc)

	killed := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond)
		f1.cmd.Process.Signal(syscall.SIGKILL)
		close(killed)
	}()

	// The leader stays alive: every window must drain acked. Keep writing
	// a few windows past the kill so the stream moves on without the dead
	// follower.
	seq := uint64(1)
	extra := 0
	for extra < 4 {
		select {
		case <-killed:
			extra++
		default:
		}
		for i := 0; i < crashWindow; i++ {
			k := (seq + uint64(i)) % crashKeys
			s := seq + uint64(i)
			if err := cc.c.WriteRequest(&wire.Request{Op: wire.OpPut, Key: k, Vals: crashRow(k, s)}); err != nil {
				t.Fatalf("leader write with dead follower: %v", err)
			}
			cc.issued = append(cc.issued, crashOp{key: k, seq: s})
			cc.maxIssued[k] = s
		}
		seq += crashWindow
		if err := cc.c.Flush(); err != nil {
			t.Fatalf("leader flush with dead follower: %v", err)
		}
		if err := cc.drainWindow(); err != nil {
			dumpLog(t, lead)
			t.Fatalf("leader died while follower was down: %v", err)
		}
	}
	f1.cmd.Wait()
	if !cc.ackedAny {
		t.Fatal("nothing acked; harness too slow")
	}

	// Restart the follower on its own WAL directory: it must recover the
	// locally persisted prefix from disk and resume the stream from its
	// durable cursor rather than refetching all of history.
	f2 := startOrdod(t, walDirF, "fkill-fol-b", "-follow", replAddr)
	defer func() {
		f2.cmd.Process.Kill()
		f2.cmd.Wait()
	}()
	waitConverge(t, f2.addr, "restarted follower", cc)

	// Local-disk resume, not a refetch: the restart recovered records from
	// its own WAL, and the boot log shows a nonzero stream cursor.
	nc2, err := net.Dial("tcp", f2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	c2 := wire.NewConn(nc2)
	nc2.SetReadDeadline(time.Now().Add(10 * time.Second))
	r, err := c2.Do(&wire.Request{Op: wire.OpStats})
	if err != nil || r.Stats == nil {
		t.Fatalf("follower stats after restart: %v", err)
	}
	if r.Stats.RecoveredRecords == 0 {
		t.Fatal("restarted follower recovered zero records from its local WAL")
	}
	b, err := os.ReadFile(f2.log)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "following ") {
		t.Fatalf("follower boot log missing cursor line:\n%s", b)
	}
	if strings.Contains(string(b), "from cursor (0, 0)") {
		t.Fatalf("restarted follower resumed from (0, 0) — cursor not persisted:\n%s", b)
	}
}
