// Package ordo is the public API of the Ordo scalable ordering primitive
// (Kashyap, Min, Kim, Kim — "A Scalable Ordering Primitive for Multicore
// Machines", EuroSys 2018).
//
// Ordo gives concurrent algorithms a drop-in replacement for a contended
// global logical clock: per-core invariant hardware timestamps plus a
// calibrated machine-wide uncertainty window (the ORDO_BOUNDARY) within
// which two timestamps cannot be ordered. Three methods suffice for every
// algorithm the paper re-designs:
//
//	o, _, err := ordo.Calibrate(ordo.CalibrationOptions{})
//	t0 := o.GetTime()            // local invariant clock, ordered read
//	t1 := o.NewTime(t0)          // certainly greater than t0, machine-wide
//	switch o.CmpTime(a, b) {     // After / Before / Uncertain
//	case ordo.After:  ...
//	case ordo.Before: ...
//	case ordo.Uncertain: // within one boundary: defer, retry, or abort
//	}
//
// The repository also contains full Ordo-based re-designs of RLU, TL2,
// OCC/Hekaton database concurrency control and Oplog under internal/, with
// runnable examples under examples/ and the paper's evaluation harness
// under cmd/ordo-bench.
package ordo

import (
	"ordo/internal/core"
	"ordo/internal/health"
)

// Time is an invariant-clock timestamp in ticks. See core.Time.
type Time = core.Time

// Clock is a source of invariant timestamps. See core.Clock.
type Clock = core.Clock

// ClockFunc adapts a function to the Clock interface.
type ClockFunc = core.ClockFunc

// Ordo is the calibrated primitive exposing GetTime, CmpTime and NewTime.
type Ordo = core.Ordo

// Boundary is the result of a calibration pass.
type Boundary = core.Boundary

// CalibrationOptions tunes Calibrate / ComputeBoundary.
type CalibrationOptions = core.CalibrationOptions

// PairSampler measures one-way-delay clock offsets between CPU pairs.
type PairSampler = core.PairSampler

// HardwareSampler samples the host machine's clocks with pinned threads.
type HardwareSampler = core.HardwareSampler

// CmpTime results.
const (
	Before    = core.Before
	Uncertain = core.Uncertain
	After     = core.After
)

// Hardware is the invariant hardware clock of the host (RDTSCP on amd64).
var Hardware = core.Hardware

// New builds an Ordo primitive from a clock and a known boundary, for
// callers that calibrate out of band (e.g. a hypervisor-provided bound).
func New(clock Clock, boundary Time) *Ordo { return core.New(clock, boundary) }

// Calibrate measures the host machine's ORDO_BOUNDARY by running the
// one-way-delay protocol across every CPU pair (subject to opts) and
// returns a ready-to-use primitive over the hardware clock.
func Calibrate(opts CalibrationOptions) (*Ordo, Boundary, error) {
	return core.CalibrateHardware(opts)
}

// ComputeBoundary runs the boundary algorithm over any PairSampler —
// hardware, simulated, or recorded.
func ComputeBoundary(s PairSampler, opts CalibrationOptions) (Boundary, error) {
	return core.ComputeBoundary(s, opts)
}

// PairTable is the per-CPU-pair boundary extension (§7 of the paper):
// smaller uncertainty windows between close cores, at the cost of O(n²)
// memory and a thread-pinning requirement. See core.PairTable.
type PairTable = core.PairTable

// ComputePairTable measures every pair and retains per-pair windows.
func ComputePairTable(s PairSampler, opts CalibrationOptions) (*PairTable, error) {
	return core.ComputePairTable(s, opts)
}

// Monitor watches a calibrated Ordo primitive in the background: it
// periodically re-runs the calibration protocol, publishes a widened
// boundary when clock drift demands one, and cross-checks the invariant
// clock's advertised frequency against the OS monotonic clock. See
// internal/health for the full behavior.
type Monitor = health.Monitor

// MonitorOptions tunes a Monitor (calibration cadence, drift threshold,
// stats sink). The zero value is usable.
type MonitorOptions = health.Options

// HealthStats is a lock-free sharded sink for hot-path clock statistics
// (CmpTime outcome counts, NewTime spin durations). Share one instance
// between Instrument and NewMonitor to see hot-path rates in snapshots.
type HealthStats = health.Stats

// HealthSnapshot is a point-in-time, JSON-marshalable view of boundary,
// calibration history, drift estimate and hot-path counters.
type HealthSnapshot = health.Snapshot

// CalibrationPass records one background recalibration in a snapshot.
type CalibrationPass = health.Pass

// Instrumented wraps an Ordo primitive so every CmpTime / NewTime call
// is tallied into a HealthStats sink.
type Instrumented = health.Instrumented

// NewHealthStats allocates a stats sink for Instrument / MonitorOptions.
func NewHealthStats() *HealthStats { return health.NewStats() }

// Instrument wraps o with hot-path counting. A nil stats allocates one.
func Instrument(o *Ordo, stats *HealthStats) *Instrumented {
	return health.Instrument(o, stats)
}

// NewMonitor builds a health monitor for o. Call Start for background
// recalibration, or RunOnce to drive passes manually; Snapshot at any
// time for the current health view.
func NewMonitor(o *Ordo, opts MonitorOptions) *Monitor {
	return health.NewMonitor(o, opts)
}
